#include "nn/dense.hpp"

#include <algorithm>

#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::nn {

Dense::Dense(int in_features, int out_features, Rng& rng, bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      w_(Tensor::xavier(out_features, in_features, rng)),
      b_({out_features}),
      gw_({out_features, in_features}),
      gb_({out_features}) {
  S2A_CHECK(in_features > 0 && out_features > 0);
}

// Both Dense paths produce identical bits: the gemm path computes
// yᵀ = W·xᵀ into a zero-initialized scratch tile, so each output
// element accumulates x[i,p]*w[j,p] in ascending p from 0 — exactly
// matmul_nt's chain — and the bias is added afterwards in both.
Tensor Dense::forward(const Tensor& x) {
  S2A_CHECK_MSG(x.shape().size() == 2 && x.dim(1) == in_,
                "Dense expects [N," << in_ << "]");
  last_x_ = x;
  const int n = x.dim(0);
  Tensor y({n, out_});
  if (quantized_ && quant_backend() == QuantBackend::kInt8) {
    // Int8 path: same yᵀ = W·xᵀ framing as the gemm path, but with the
    // int8 weight snapshot and a per-tensor activation scale. The int32
    // accumulation is order-exact; the result differs from float only
    // by the quantization grid.
    arena_.reset();
    double* xt = arena_.alloc(static_cast<std::size_t>(in_) * n);
    transpose(x.data(), n, in_, xt);
    const double xs = activation_scale(x.data(), x.numel());
    std::int8_t* xtq = alloc_int8(arena_, static_cast<std::size_t>(in_) * n);
    quantize_values(xt, static_cast<std::size_t>(in_) * n, xs, xtq);
    double* yt = arena_.alloc(static_cast<std::size_t>(out_) * n);
    std::fill_n(yt, static_cast<std::size_t>(out_) * n, 0.0);
    gemm_int8(qw_, n, xtq, n, xs, yt, n);
    transpose(yt, out_, n, y.data());
  } else if (conv_backend() == ConvBackend::kNaive) {
    y = matmul_nt(x, w_);
  } else {
    arena_.reset();
    // A = W [out, in] (reduction axis already contiguous), B = xᵀ.
    double* xt = arena_.alloc(static_cast<std::size_t>(in_) * n);
    transpose(x.data(), n, in_, xt);
    double* yt = arena_.alloc(static_cast<std::size_t>(out_) * n);
    std::fill_n(yt, static_cast<std::size_t>(out_) * n, 0.0);
    double* wp = arena_.alloc(packed_a_size(out_, in_));
    pack_a(w_.data(), in_, out_, in_, wp);
    gemm_packed(out_, n, in_, wp, xt, n, yt, n);
    transpose(yt, out_, n, y.data());
  }
  if (has_bias_) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < out_; ++j)
        y[static_cast<std::size_t>(i) * out_ + j] += b_[static_cast<std::size_t>(j)];
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  S2A_TRACE_SCOPE_CAT("nn.dense_backward", "nn");
  S2A_CHECK(grad_out.shape().size() == 2 && grad_out.dim(1) == out_);
  S2A_CHECK_MSG(!last_x_.empty(), "backward before forward");
  // dW += gᵀ·x ; db += column sums of g ; dx = g·W
  const int n = grad_out.dim(0);
  if (conv_backend() == ConvBackend::kNaive) {
    const Tensor dw = matmul_tn(grad_out, last_x_);
    gw_.add_scaled(dw, 1.0);
  } else {
    arena_.reset();
    // dW chain matches matmul_tn: ascending samples from 0, then one
    // += per element onto gW.
    double* gt = arena_.alloc(static_cast<std::size_t>(out_) * n);
    transpose(grad_out.data(), n, out_, gt);
    double* gtp = arena_.alloc(packed_a_size(out_, n));
    pack_a(gt, n, out_, n, gtp);
    double* dw = arena_.alloc(static_cast<std::size_t>(out_) * in_);
    std::fill_n(dw, static_cast<std::size_t>(out_) * in_, 0.0);
    gemm_packed(out_, in_, n, gtp, last_x_.data(), in_, dw, in_);
    for (std::size_t i = 0; i < gw_.numel(); ++i) gw_[i] += dw[i];
  }
  if (has_bias_) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < out_; ++j)
        gb_[static_cast<std::size_t>(j)] +=
            grad_out[static_cast<std::size_t>(i) * out_ + j];
  }
  if (conv_backend() == ConvBackend::kNaive) return matmul(grad_out, w_);
  // dx = g·W via the packed kernel; zero-init C gives matmul's chain.
  Tensor dx({n, in_});
  double* gp = arena_.alloc(packed_a_size(n, out_));
  pack_a(grad_out.data(), out_, n, out_, gp);
  gemm_packed(n, in_, out_, gp, w_.data(), in_, dx.data(), in_);
  return dx;
}

std::vector<Tensor*> Dense::params() {
  if (frozen_) return {};
  if (has_bias_) return {&w_, &b_};
  return {&w_};
}

std::vector<Tensor*> Dense::grads() {
  if (frozen_) return {};
  if (has_bias_) return {&gw_, &gb_};
  return {&gw_};
}

std::size_t Dense::macs_per_sample() const {
  return static_cast<std::size_t>(in_) * static_cast<std::size_t>(out_);
}

void Dense::quantize() {
  qw_ = quantize_rows(w_.data(), in_, out_, in_);
  quantized_ = true;
}

LoRADense::LoRADense(const Dense& base, int rank, double alpha, Rng& rng)
    : in_(base.in_features()),
      out_(base.out_features()),
      rank_(rank),
      scale_(alpha / rank),
      w_(base.weight()),
      b_({out_}),
      a_(Tensor::randn({rank, in_}, rng, 1.0 / in_)),
      b_lora_({out_, rank}),
      ga_({rank, in_}),
      gb_lora_({out_, rank}) {
  S2A_CHECK(rank > 0 && rank <= in_ && rank <= out_);
  // Copy the base bias via a const-safe route.
  b_ = const_cast<Dense&>(base).bias();
}

Tensor LoRADense::forward(const Tensor& x) {
  S2A_CHECK(x.shape().size() == 2 && x.dim(1) == in_);
  last_x_ = x;
  Tensor y = matmul_nt(x, w_);
  last_xa_ = matmul_nt(x, a_);                 // [N, r]
  const Tensor lora = matmul_nt(last_xa_, b_lora_);  // [N, out]
  y.add_scaled(lora, scale_);
  const int n = y.dim(0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < out_; ++j)
      y[static_cast<std::size_t>(i) * out_ + j] += b_[static_cast<std::size_t>(j)];
  return y;
}

Tensor LoRADense::backward(const Tensor& grad_out) {
  S2A_CHECK(!last_x_.empty());
  // Path 1 (frozen): dx1 = g·W.
  Tensor dx = matmul(grad_out, w_);
  // Path 2 (LoRA): y2 = s·(x·Aᵀ)·Bᵀ.
  // dB += s·gᵀ·(x·Aᵀ) ; d(xAᵀ) = s·g·B ; dA += d(xAᵀ)ᵀ·x ; dx2 = d(xAᵀ)·A.
  const Tensor db = matmul_tn(grad_out, last_xa_);
  gb_lora_.add_scaled(db, scale_);
  Tensor dxa = matmul(grad_out, b_lora_);
  for (std::size_t i = 0; i < dxa.numel(); ++i) dxa[i] *= scale_;
  const Tensor da = matmul_tn(dxa, last_x_);
  ga_.add_scaled(da, 1.0);
  dx.add_scaled(matmul(dxa, a_), 1.0);
  return dx;
}

std::vector<Tensor*> LoRADense::params() { return {&a_, &b_lora_}; }
std::vector<Tensor*> LoRADense::grads() { return {&ga_, &gb_lora_}; }

std::size_t LoRADense::macs_per_sample() const {
  return static_cast<std::size_t>(in_) * out_ +
         static_cast<std::size_t>(rank_) * (in_ + out_);
}

Tensor LoRADense::merged_weight() const {
  Tensor merged = w_;
  const Tensor ba = matmul(b_lora_, a_);  // [out, in]
  merged.add_scaled(ba, scale_);
  return merged;
}

}  // namespace s2a::nn
