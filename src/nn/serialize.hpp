// Parameter serialization: save and load the trainable state of any
// model that exposes params() as a vector<Tensor*>. A downstream user
// trains once (autoencoder pre-training, detector fine-tuning, flow
// networks) and redeploys the weights without retraining — table stakes
// for an adoptable library.
//
// Format: a small text header ("s2a-params v1", tensor count), then per
// tensor its rank, dims, and values in hex-exact %a formatting (loads are
// bit-identical, unlike decimal round-trips).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace s2a::nn {

/// Writes the tensors to the stream. Order defines identity: load with
/// the same params() ordering.
void save_params(const std::vector<Tensor*>& params, std::ostream& os);
void save_params_file(const std::vector<Tensor*>& params,
                      const std::string& path);

/// Loads into the given tensors; shapes must match exactly (CheckError
/// otherwise — a model-architecture mismatch should never be silent).
void load_params(const std::vector<Tensor*>& params, std::istream& is);
void load_params_file(const std::vector<Tensor*>& params,
                      const std::string& path);

}  // namespace s2a::nn
