// Loss functions. Each returns the scalar loss (mean over the batch) and
// the gradient with respect to the prediction, ready to feed backward().
#pragma once

#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace s2a::nn {

struct LossResult {
  double value = 0.0;
  Tensor grad;  ///< dL/d(pred), same shape as pred
};

/// Mean squared error, averaged over all elements.
LossResult mse_loss(const Tensor& pred, const Tensor& target);

/// Numerically stable sigmoid + binary cross-entropy, averaged over all
/// elements. `target` entries must be in [0, 1].
LossResult bce_with_logits(const Tensor& logits, const Tensor& target);

/// Softmax + cross-entropy over logits [N, C] with integer labels.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Row-wise softmax probabilities of logits [N, C].
Tensor softmax(const Tensor& logits);

/// Fraction of rows whose argmax matches the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace s2a::nn
