// Ordered container of layers trained as a unit.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace s2a::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Constructs a layer in place and appends it; returns a reference so
  /// callers can keep handles to specific layers.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  std::size_t macs_per_sample() const override;

  /// Snapshots every layer's weights into int8 form (a no-op for layers
  /// without an int8 path). See Layer::quantize() for the refresh and
  /// backend-gating semantics.
  void quantize() override {
    for (auto& l : layers_) l->quantize();
  }
  /// True when at least one layer holds an int8 snapshot.
  bool is_quantized() const override {
    for (const auto& l : layers_)
      if (l->is_quantized()) return true;
    return false;
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Lifetime backing-block allocations across all layers' kernel
  /// arenas (slots included). Training loops assert this stops growing
  /// after the first couple of steps — the zero-steady-state-allocation
  /// invariant of the GEMM forward/backward kernels.
  std::size_t scratch_growth_count() const;
  /// Total doubles reserved across all layers' kernel arenas.
  std::size_t scratch_capacity() const;

 private:
  std::vector<LayerPtr> layers_;
};

/// Standard MLP builder: Dense(+activation) stacks, linear final layer.
/// `hidden` lists the hidden widths; activation is Tanh when `tanh_act`
/// is true, ReLU otherwise.
Sequential make_mlp(int in, const std::vector<int>& hidden, int out, Rng& rng,
                    bool tanh_act = false);

}  // namespace s2a::nn
