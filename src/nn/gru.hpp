// Single-step GRU cell with explicit backward.
//
// Used as the "recurrent model" baseline in the RoboKoop dynamics-model
// comparison (Fig. 5a/5b). The cell is trained on one-step latent
// prediction, so a single-step backward (no BPTT) is all the training
// loop needs; inference can still roll the cell forward arbitrarily far.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace s2a::nn {

class GRUCell {
 public:
  GRUCell(int input_size, int hidden_size, Rng& rng);

  /// One step: returns h' given x [N, in] and h [N, hidden].
  Tensor step(const Tensor& x, const Tensor& h);

  /// Backward through the last step(). Returns {dL/dx, dL/dh}; parameter
  /// gradients accumulate.
  std::pair<Tensor, Tensor> backward(const Tensor& grad_h_new);

  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();
  void zero_grad();

  std::size_t macs_per_sample() const {
    // Three gates, each an input and a hidden matmul.
    return 3u * (static_cast<std::size_t>(in_) * hid_ +
                 static_cast<std::size_t>(hid_) * hid_);
  }
  int hidden_size() const { return hid_; }

 private:
  int in_, hid_;
  // w*: [hid, in] input weights; u*: [hid, hid] recurrent weights.
  Tensor wz_, wr_, wc_, uz_, ur_, uc_, bz_, br_, bc_;
  Tensor gwz_, gwr_, gwc_, guz_, gur_, guc_, gbz_, gbr_, gbc_;
  // Cached activations from the last step.
  Tensor x_, h_, z_, r_, c_, rh_;
};

}  // namespace s2a::nn
