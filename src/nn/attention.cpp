#include "nn/attention.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::nn {

SelfAttention::SelfAttention(int dim, Rng& rng)
    : d_(dim),
      wq_(Tensor::xavier(dim, dim, rng)),
      wk_(Tensor::xavier(dim, dim, rng)),
      wv_(Tensor::xavier(dim, dim, rng)),
      wo_(Tensor::xavier(dim, dim, rng)),
      gq_({dim, dim}),
      gk_({dim, dim}),
      gv_({dim, dim}),
      go_({dim, dim}) {
  S2A_CHECK(dim > 0);
}

Tensor SelfAttention::forward(const Tensor& x) {
  S2A_CHECK_MSG(x.shape().size() == 2 && x.dim(1) == d_,
                "SelfAttention expects [T," << d_ << "]");
  x_ = x;
  const int t = x.dim(0);
  last_t_ = static_cast<std::size_t>(t);

  q_ = matmul_nt(x, wq_);
  k_ = matmul_nt(x, wk_);
  v_ = matmul_nt(x, wv_);

  const double scale = 1.0 / std::sqrt(static_cast<double>(d_));
  Tensor s = matmul_nt(q_, k_);  // [T, T]
  for (std::size_t i = 0; i < s.numel(); ++i) s[i] *= scale;

  // Row-wise softmax with max subtraction.
  p_ = s;
  for (int i = 0; i < t; ++i) {
    double mx = p_[static_cast<std::size_t>(i) * t];
    for (int j = 1; j < t; ++j)
      mx = std::max(mx, p_[static_cast<std::size_t>(i) * t + j]);
    double sum = 0.0;
    for (int j = 0; j < t; ++j) {
      double& e = p_[static_cast<std::size_t>(i) * t + j];
      e = std::exp(e - mx);
      sum += e;
    }
    for (int j = 0; j < t; ++j) p_[static_cast<std::size_t>(i) * t + j] /= sum;
  }

  att_ = matmul(p_, v_);
  return matmul_nt(att_, wo_);
}

Tensor SelfAttention::backward(const Tensor& grad_out) {
  S2A_CHECK(!x_.empty());
  const int t = x_.dim(0);
  S2A_CHECK(grad_out.shape().size() == 2 && grad_out.dim(0) == t &&
            grad_out.dim(1) == d_);

  // y = att·Woᵀ
  go_.add_scaled(matmul_tn(grad_out, att_), 1.0);
  const Tensor datt = matmul(grad_out, wo_);

  // att = P·V
  Tensor dp = matmul_nt(datt, v_);        // [T, T]
  const Tensor dv = matmul_tn(p_, datt);  // [T, d]

  // Softmax rows: dS = P ⊙ (dP − rowdot(dP, P)).
  Tensor ds = dp;
  for (int i = 0; i < t; ++i) {
    double rowdot = 0.0;
    for (int j = 0; j < t; ++j)
      rowdot += dp[static_cast<std::size_t>(i) * t + j] *
                p_[static_cast<std::size_t>(i) * t + j];
    for (int j = 0; j < t; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * t + j;
      ds[idx] = p_[idx] * (dp[idx] - rowdot);
    }
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_));
  for (std::size_t i = 0; i < ds.numel(); ++i) ds[i] *= scale;

  // S = Q·Kᵀ (after scaling handled above).
  const Tensor dq = matmul(ds, k_);
  const Tensor dk = matmul_tn(ds, q_);

  // Projections: q = x·Wqᵀ etc.
  gq_.add_scaled(matmul_tn(dq, x_), 1.0);
  gk_.add_scaled(matmul_tn(dk, x_), 1.0);
  gv_.add_scaled(matmul_tn(dv, x_), 1.0);

  Tensor dx = matmul(dq, wq_);
  dx.add_scaled(matmul(dk, wk_), 1.0);
  dx.add_scaled(matmul(dv, wv_), 1.0);
  return dx;
}

std::size_t SelfAttention::macs_per_sample() const {
  const std::size_t d = static_cast<std::size_t>(d_);
  const std::size_t t = last_t_ == 0 ? 1 : last_t_;
  return 4 * t * d * d + 2 * t * t * d;
}

}  // namespace s2a::nn
