// First-order optimizers over (param, grad) tensor pairs.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace s2a::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Registers parameters with their gradient buffers (index-aligned).
  void attach(std::vector<Tensor*> params, std::vector<Tensor*> grads);
  virtual void step() = 0;
  void zero_grad();

 protected:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
};

class SGD : public Optimizer {
 public:
  explicit SGD(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}
  void step() override;
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_, momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step() override;
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Tensor*>& grads, double max_norm);

}  // namespace s2a::nn
