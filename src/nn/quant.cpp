#include "nn/quant.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"
#include "util/cpu_features.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace s2a::nn {

namespace {

std::atomic<QuantBackend> g_quant{QuantBackend::kAuto};

std::int8_t quantize_one(double x, double inv_scale) {
  const long q = std::lround(x * inv_scale);
  if (q > 127) return 127;
  if (q < -127) return -127;
  return static_cast<std::int8_t>(q);
}

}  // namespace

void set_quant_backend(QuantBackend backend) {
  g_quant.store(backend, std::memory_order_relaxed);
}

QuantBackend quant_backend() {
  const QuantBackend b = g_quant.load(std::memory_order_relaxed);
  if (b != QuantBackend::kAuto) return b;
  const char* env = std::getenv("S2A_QUANT");
  return (env != nullptr && env[0] == '1') ? QuantBackend::kInt8
                                           : QuantBackend::kFloat;
}

QuantizedMatrix quantize_rows(const double* a, int lda, int rows, int cols) {
  S2A_CHECK(rows >= 0 && cols >= 0);
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(static_cast<std::size_t>(rows) * cols);
  q.scales.resize(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    const double* row = a + static_cast<std::size_t>(i) * lda;
    double amax = 0.0;
    for (int j = 0; j < cols; ++j) amax = std::max(amax, std::fabs(row[j]));
    const double scale = amax > 0.0 ? amax / 127.0 : 1.0;
    q.scales[static_cast<std::size_t>(i)] = scale;
    const double inv = 1.0 / scale;
    std::int8_t* out = q.data.data() + static_cast<std::size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) out[j] = quantize_one(row[j], inv);
  }
  return q;
}

double activation_scale(const double* x, std::size_t n) {
  double amax = 0.0;
  for (std::size_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(x[i]));
  return amax > 0.0 ? amax / 127.0 : 1.0;
}

void quantize_values(const double* x, std::size_t n, double scale,
                     std::int8_t* out) {
  S2A_CHECK(scale > 0.0);
  const double inv = 1.0 / scale;
  for (std::size_t i = 0; i < n; ++i) out[i] = quantize_one(x[i], inv);
}

std::int8_t* alloc_int8(util::ScratchArena& arena, std::size_t count) {
  return reinterpret_cast<std::int8_t*>(arena.alloc((count + 7) / 8));
}

namespace detail {

void gemm_int8_scalar(int m, int n, int k, const std::int8_t* a,
                      const double* a_scales, const std::int8_t* b, int ldb,
                      double b_scale, double* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    const std::int8_t* arow = a + static_cast<std::size_t>(i) * k;
    double* crow = c + static_cast<std::size_t>(i) * ldc;
    const double deq = a_scales[i] * b_scale;
    for (int j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(b[static_cast<std::size_t>(kk) * ldb +
                                           j]);
      crow[j] += deq * static_cast<double>(acc);
    }
  }
}

#if defined(__x86_64__) || defined(_M_X64)

// Widened-int16 vpmaddwd kernel: per (i, j-octet), two consecutive B
// rows are byte-interleaved, sign-extended to int16, and multiplied
// against the pair [a[kk], a[kk+1]] replicated in each int32 lane —
// one vpmaddwd does both k steps for 8 columns. int32 accumulation is
// exact, so the result matches gemm_int8_scalar bit for bit.
__attribute__((target("avx2"))) void gemm_int8_avx2(
    int m, int n, int k, const std::int8_t* a, const double* a_scales,
    const std::int8_t* b, int ldb, double b_scale, double* c, int ldc) {
  const int n8 = n - (n % 8);
  const int k2 = k - (k % 2);
  for (int i = 0; i < m; ++i) {
    const std::int8_t* arow = a + static_cast<std::size_t>(i) * k;
    double* crow = c + static_cast<std::size_t>(i) * ldc;
    const double deq = a_scales[i] * b_scale;
    for (int j = 0; j < n8; j += 8) {
      __m256i acc = _mm256_setzero_si256();
      for (int kk = 0; kk < k2; kk += 2) {
        const std::int8_t* b0 = b + static_cast<std::size_t>(kk) * ldb + j;
        const std::int8_t* b1 = b0 + ldb;
        // [b0[0],b1[0],b0[1],b1[1],...] as 16 int8, widened to int16.
        const __m128i lo = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(b0));
        const __m128i hi = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(b1));
        const __m256i pairs =
            _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(lo, hi));
        const std::uint16_t a0 =
            static_cast<std::uint16_t>(static_cast<std::int16_t>(arow[kk]));
        const std::uint16_t a1 = static_cast<std::uint16_t>(
            static_cast<std::int16_t>(arow[kk + 1]));
        const __m256i avec = _mm256_set1_epi32(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(a0) |
                                      (static_cast<std::uint32_t>(a1) << 16)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, avec));
      }
      alignas(32) std::int32_t lanes[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
      if (k2 < k) {  // odd-k tail: one scalar k step for these columns
        const std::int8_t* brow = b + static_cast<std::size_t>(k2) * ldb + j;
        const std::int32_t av = arow[k2];
        for (int v = 0; v < 8; ++v)
          lanes[v] += av * static_cast<std::int32_t>(brow[v]);
      }
      for (int v = 0; v < 8; ++v)
        crow[j + v] += deq * static_cast<double>(lanes[v]);
    }
    for (int j = n8; j < n; ++j) {  // column tail
      std::int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(b[static_cast<std::size_t>(kk) * ldb +
                                           j]);
      crow[j] += deq * static_cast<double>(acc);
    }
  }
}

#endif  // x86-64

}  // namespace detail

void gemm_int8(const QuantizedMatrix& a, int n, const std::int8_t* b, int ldb,
               double b_scale, double* c, int ldc) {
  S2A_CHECK(n >= 0);
  if (a.rows == 0 || a.cols == 0 || n == 0) return;
#if defined(__x86_64__) || defined(_M_X64)
  if (util::cpu_features().avx2 &&
      util::active_simd_isa() != util::SimdIsa::kScalar) {
    detail::gemm_int8_avx2(a.rows, n, a.cols, a.data.data(), a.scales.data(),
                           b, ldb, b_scale, c, ldc);
    return;
  }
#endif
  detail::gemm_int8_scalar(a.rows, n, a.cols, a.data.data(), a.scales.data(),
                           b, ldb, b_scale, c, ldc);
}

}  // namespace s2a::nn
