// AVX-512F GEMM micro-kernels (x86-64). Compiled with
// -mavx512f -mfma -ffp-contract=off — see gemm_kernels.hpp for why the
// contraction flag matters.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "nn/gemm_kernels.hpp"

namespace s2a::nn::detail {

namespace {

// 8 rows x 16 columns: 16 __m512d accumulators + 2 B vectors + 1 A
// broadcast = 19 of the 32 zmm registers. The wide M halves how many
// passes the (ldb-strided, prefetcher-hostile) B strip takes, and the
// software prefetch pulls the row 8 k steps ahead for the cold first
// pass. The 4-row half tile below covers m-tail panels of exactly 4
// rows — the stride-2 deconv phase GEMMs are m=4 — at full vector
// width; A keeps the 8-row packed stride in both.
template <bool kFused>
void micro_8x16(int kc, const double* ap, const double* b, int ldb, double* c,
                int ldc) {
  __m512d acc[8][2];
  for (int i = 0; i < 8; ++i) {
    acc[i][0] = _mm512_loadu_pd(c + static_cast<std::size_t>(i) * ldc);
    acc[i][1] = _mm512_loadu_pd(c + static_cast<std::size_t>(i) * ldc + 8);
  }
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    __builtin_prefetch(brow + 8 * static_cast<std::size_t>(ldb));
    __builtin_prefetch(brow + 8 * static_cast<std::size_t>(ldb) + 8);
    const __m512d b0 = _mm512_loadu_pd(brow);
    const __m512d b1 = _mm512_loadu_pd(brow + 8);
    const double* acol = ap + static_cast<std::size_t>(kk) * 8;
    for (int i = 0; i < 8; ++i) {
      const __m512d a = _mm512_set1_pd(acol[i]);
      if constexpr (kFused) {
        acc[i][0] = _mm512_fmadd_pd(a, b0, acc[i][0]);
        acc[i][1] = _mm512_fmadd_pd(a, b1, acc[i][1]);
      } else {
        acc[i][0] = _mm512_add_pd(acc[i][0], _mm512_mul_pd(a, b0));
        acc[i][1] = _mm512_add_pd(acc[i][1], _mm512_mul_pd(a, b1));
      }
    }
  }
  for (int i = 0; i < 8; ++i) {
    _mm512_storeu_pd(c + static_cast<std::size_t>(i) * ldc, acc[i][0]);
    _mm512_storeu_pd(c + static_cast<std::size_t>(i) * ldc + 8, acc[i][1]);
  }
}

template <bool kFused>
void micro_4x16(int kc, const double* ap, const double* b, int ldb, double* c,
                int ldc) {
  __m512d acc[4][2];
  for (int i = 0; i < 4; ++i) {
    acc[i][0] = _mm512_loadu_pd(c + static_cast<std::size_t>(i) * ldc);
    acc[i][1] = _mm512_loadu_pd(c + static_cast<std::size_t>(i) * ldc + 8);
  }
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    __builtin_prefetch(brow + 8 * static_cast<std::size_t>(ldb));
    __builtin_prefetch(brow + 8 * static_cast<std::size_t>(ldb) + 8);
    const __m512d b0 = _mm512_loadu_pd(brow);
    const __m512d b1 = _mm512_loadu_pd(brow + 8);
    // A row stride is the full kernel's 8 even in the half tile.
    const double* acol = ap + static_cast<std::size_t>(kk) * 8;
    for (int i = 0; i < 4; ++i) {
      const __m512d a = _mm512_set1_pd(acol[i]);
      if constexpr (kFused) {
        acc[i][0] = _mm512_fmadd_pd(a, b0, acc[i][0]);
        acc[i][1] = _mm512_fmadd_pd(a, b1, acc[i][1]);
      } else {
        acc[i][0] = _mm512_add_pd(acc[i][0], _mm512_mul_pd(a, b0));
        acc[i][1] = _mm512_add_pd(acc[i][1], _mm512_mul_pd(a, b1));
      }
    }
  }
  for (int i = 0; i < 4; ++i) {
    _mm512_storeu_pd(c + static_cast<std::size_t>(i) * ldc, acc[i][0]);
    _mm512_storeu_pd(c + static_cast<std::size_t>(i) * ldc + 8, acc[i][1]);
  }
}

}  // namespace

const GemmMicroKernel& gemm_kernel_avx512() {
  static const GemmMicroKernel k{"avx512", 8, 16, micro_8x16<false>,
                                 micro_4x16<false>};
  return k;
}

const GemmMicroKernel& gemm_kernel_avx512fma() {
  static const GemmMicroKernel k{"avx512fma", 8, 16, micro_8x16<true>,
                                 micro_4x16<true>};
  return k;
}

}  // namespace s2a::nn::detail

#endif  // x86-64
