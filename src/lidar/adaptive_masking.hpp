// Adaptive, task-informed masking — the Sec. III future-work direction
// ("future work could explore adaptive masking"): instead of a fixed
// radial pattern, the masker maintains a per-segment interest map fed by
// the previous frame's detections (an action-to-sensing feedback path)
// and spends its beam budget preferentially on segments that recently
// contained objects, at full-range pulse power.
#pragma once

#include <vector>

#include "lidar/detector.hpp"
#include "lidar/masking.hpp"

namespace s2a::lidar {

struct TaskAwareMaskerConfig {
  RadialMaskerConfig base;
  /// Added to a segment's keep probability when fully interesting.
  double interest_boost = 0.6;
  /// Per-frame multiplicative decay of interest (objects move / disappear).
  double interest_decay = 0.7;
  /// Interesting segments fire full-range pulses at this rate (they hold
  /// confirmed objects whose range matters).
  double far_pulse_fraction_interesting = 0.5;
};

class TaskAwareMasker : public Masker {
 public:
  explicit TaskAwareMasker(TaskAwareMaskerConfig config = {});

  std::string name() const override { return "task-aware R-MAE"; }
  std::vector<bool> voxel_mask(const VoxelGrid& grid, Rng& rng) const override;
  std::vector<sim::BeamCommand> beam_plan(const sim::LidarConfig& lidar,
                                          Rng& rng) const override;

  /// Feedback: fold the latest detections into the interest map. Call once
  /// per frame with whatever the downstream detector produced.
  void observe_detections(const std::vector<Detection>& detections);
  /// Interest in [0, 1] per angular segment (exposed for tests/benches).
  const std::vector<double>& interest() const { return interest_; }

 private:
  int segment_of(double azimuth) const;
  double segment_keep_probability(int segment) const;

  TaskAwareMaskerConfig cfg_;
  std::vector<double> interest_;
};

}  // namespace s2a::lidar
