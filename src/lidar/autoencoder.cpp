#include "lidar/autoencoder.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/loss.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace s2a::lidar {

OccupancyAutoencoder::OccupancyAutoencoder(AutoencoderConfig config, Rng& rng)
    : cfg_(config) {
  const int nz = cfg_.grid.nz;
  S2A_CHECK_MSG(cfg_.grid.nx % 4 == 0 && cfg_.grid.ny % 4 == 0,
                "grid must be divisible by the encoder stride (4)");
  conv1_ = &encoder_.emplace<nn::Conv2D>(nz, cfg_.c1, 3, 2, 1, rng);
  encoder_.emplace<nn::ReLU>();
  conv2_ = &encoder_.emplace<nn::Conv2D>(cfg_.c1, cfg_.c2, 3, 2, 1, rng);
  encoder_.emplace<nn::ReLU>();

  decoder_.emplace<nn::ConvTranspose2D>(cfg_.c2, cfg_.c1, 4, 2, 1, rng);
  decoder_.emplace<nn::ReLU>();
  decoder_.emplace<nn::ConvTranspose2D>(cfg_.c1, nz, 4, 2, 1, rng);
}

nn::Tensor OccupancyAutoencoder::encode(const nn::Tensor& grid) {
  return encoder_.forward(grid);
}

nn::Tensor OccupancyAutoencoder::decode(const nn::Tensor& latent) {
  return decoder_.forward(latent);
}

nn::Tensor OccupancyAutoencoder::reconstruct(const nn::Tensor& masked_grid) {
  S2A_TRACE_SCOPE_CAT("lidar.ae_reconstruct", "lidar");
  // The conv/deconv forwards shard across BEV rows internally (conv2d.cpp
  // via util::global_pool); the elementwise sigmoid shards here. Both are
  // per-element independent, so reconstruction is bit-exact at every
  // thread count.
  nn::Tensor logits = decode(encode(masked_grid));
  util::global_pool().parallel_for(0, logits.numel(), 4096,
                                   [&logits](std::size_t i) {
                                     logits[i] = 1.0 / (1.0 + std::exp(-logits[i]));
                                   });
  return logits;
}

std::vector<double> surface_weights(const nn::Tensor& target,
                                    const VoxelGridConfig& g,
                                    double far_weight) {
  S2A_CHECK(target.shape() == (std::vector<int>{1, g.nz, g.ny, g.nx}));
  std::vector<double> w(target.numel(), far_weight);
  const auto idx = [&](int z, int y, int x) {
    return (static_cast<std::size_t>(z) * g.ny + y) * g.nx + x;
  };
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        if (target[idx(z, y, x)] <= 0.5) continue;
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            const int yy = y + dy, xx = x + dx;
            if (yy < 0 || yy >= g.ny || xx < 0 || xx >= g.nx) continue;
            w[idx(z, yy, xx)] = 1.0;
          }
      }
  return w;
}

double OccupancyAutoencoder::train_step(const nn::Tensor& masked,
                                        const nn::Tensor& target,
                                        nn::Optimizer& opt,
                                        PretrainObjective objective) {
  S2A_TRACE_SCOPE_CAT("lidar.ae_train_step", "lidar");
  opt.zero_grad();
  nn::Tensor logits = decode(encode(masked));
  auto loss = nn::bce_with_logits(logits, target);

  // Counteract occupancy sparsity (see AutoencoderConfig::pos_weight).
  // Per-element independent, so sharding it (like the backward kernels
  // it feeds) keeps the step bit-exact at every thread count.
  nn::Tensor& grad = loss.grad;
  const double pos_weight = cfg_.pos_weight;
  util::global_pool().parallel_for(
      0, grad.numel(), 4096, [&grad, &target, pos_weight](std::size_t i) {
        if (target[i] > 0.5) grad[i] *= pos_weight;
      });

  if (objective == PretrainObjective::kSurfaceWeighted) {
    const auto w = surface_weights(target, cfg_.grid);
    double weighted = 0.0, wsum = 0.0;
    for (std::size_t i = 0; i < loss.grad.numel(); ++i) {
      loss.grad[i] *= w[i];
      wsum += w[i];
    }
    // Rescale so the gradient magnitude is comparable across objectives.
    const double scale = static_cast<double>(loss.grad.numel()) / std::max(1.0, wsum);
    for (std::size_t i = 0; i < loss.grad.numel(); ++i) loss.grad[i] *= scale;
    weighted = loss.value;  // reported loss stays the plain BCE
    (void)weighted;
  }

  const nn::Tensor dlatent = decoder_.backward(loss.grad);
  encoder_.backward(dlatent);
  opt.step();
  return loss.value;
}

std::vector<double> OccupancyAutoencoder::embedding(const nn::Tensor& grid) {
  const nn::Tensor z = encode(grid);
  const int c = z.dim(1), h = z.dim(2), w = z.dim(3);
  std::vector<double> e(static_cast<std::size_t>(c), 0.0);
  for (int ci = 0; ci < c; ++ci) {
    double s = 0.0;
    for (int i = 0; i < h * w; ++i)
      s += z[static_cast<std::size_t>(ci) * h * w + i];
    e[static_cast<std::size_t>(ci)] = s / (h * w);
  }
  return e;
}

std::vector<nn::Tensor*> OccupancyAutoencoder::params() {
  auto p = encoder_.params();
  for (auto* q : decoder_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> OccupancyAutoencoder::grads() {
  auto g = encoder_.grads();
  for (auto* q : decoder_.grads()) g.push_back(q);
  return g;
}

std::size_t OccupancyAutoencoder::param_count() {
  return encoder_.param_count() + decoder_.param_count();
}

std::size_t OccupancyAutoencoder::macs_per_scan() {
  return encoder_.macs_per_sample() + decoder_.macs_per_sample();
}

}  // namespace s2a::lidar
