#include "lidar/masking.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"
#include "obs/obs.hpp"

namespace s2a::lidar {

nn::Tensor Masker::apply_mask(const VoxelGrid& grid,
                              const std::vector<bool>& visible) {
  const auto& cfg = grid.config();
  S2A_CHECK(visible.size() ==
            static_cast<std::size_t>(cfg.nx) * cfg.ny * cfg.nz);
  nn::Tensor t = grid.to_tensor();
  for (std::size_t i = 0; i < visible.size(); ++i)
    if (!visible[i]) t[i] = 0.0;
  return t;
}

std::vector<bool> RadialMasker::pick_segments(Rng& rng) const {
  const int keep =
      std::max(1, static_cast<int>(cfg_.angular_segments *
                                   cfg_.segment_keep_fraction));
  std::vector<bool> kept(static_cast<std::size_t>(cfg_.angular_segments), false);
  for (int s : rng.sample_without_replacement(cfg_.angular_segments, keep))
    kept[static_cast<std::size_t>(s)] = true;
  return kept;
}

std::vector<bool> RadialMasker::voxel_mask(const VoxelGrid& grid,
                                           Rng& rng) const {
  S2A_TRACE_SCOPE_CAT("lidar.voxel_mask", "lidar");
  const auto& g = grid.config();
  const auto kept_segments = pick_segments(rng);
  std::vector<bool> visible(
      static_cast<std::size_t>(g.nx) * g.ny * g.nz, false);

  for (int iy = 0; iy < g.ny; ++iy)
    for (int ix = 0; ix < g.nx; ++ix) {
      const double azimuth = grid.voxel_azimuth(ix, iy);
      const int seg = std::min(
          cfg_.angular_segments - 1,
          static_cast<int>(azimuth / (2.0 * std::numbers::pi) *
                           cfg_.angular_segments));
      if (!kept_segments[static_cast<std::size_t>(seg)]) continue;
      // Stage 2: range-dependent probabilistic keep, shared across the
      // column (a beam either reaches this column or it does not).
      const double r = grid.voxel_range(ix, iy);
      const double p =
          cfg_.in_segment_keep * std::exp(-cfg_.range_decay * r / g.extent);
      const bool keep_column = rng.bernoulli(std::min(1.0, p / cfg_.in_segment_keep) *
                                             cfg_.in_segment_keep);
      if (!keep_column) continue;
      for (int iz = 0; iz < g.nz; ++iz)
        visible[(static_cast<std::size_t>(iz) * g.ny + iy) * g.nx + ix] = true;
    }
  return visible;
}

std::vector<sim::BeamCommand> RadialMasker::beam_plan(
    const sim::LidarConfig& lidar, Rng& rng) const {
  S2A_TRACE_SCOPE_CAT("lidar.beam_plan", "lidar");
  const auto kept_segments = pick_segments(rng);
  std::vector<sim::BeamCommand> plan;
  for (int az = 0; az < lidar.azimuth_steps; ++az) {
    const int seg =
        std::min(cfg_.angular_segments - 1,
                 az * cfg_.angular_segments / lidar.azimuth_steps);
    if (!kept_segments[static_cast<std::size_t>(seg)]) continue;
    for (int el = 0; el < lidar.elevation_steps; ++el) {
      if (!rng.bernoulli(cfg_.in_segment_keep)) continue;
      sim::BeamCommand cmd;
      cmd.azimuth_idx = az;
      cmd.elevation_idx = el;
      cmd.target_range =
          rng.bernoulli(cfg_.far_pulse_fraction)
              ? lidar.max_range
              : lidar.max_range *
                    rng.uniform(cfg_.near_reach_lo, cfg_.near_reach_hi);
      plan.push_back(cmd);
    }
  }
  return plan;
}

std::vector<bool> UniformMasker::voxel_mask(const VoxelGrid& grid,
                                            Rng& rng) const {
  const auto& g = grid.config();
  std::vector<bool> visible(
      static_cast<std::size_t>(g.nx) * g.ny * g.nz, false);
  // Column-wise, matching the beam-level granularity of the radial masker.
  for (int iy = 0; iy < g.ny; ++iy)
    for (int ix = 0; ix < g.nx; ++ix) {
      if (!rng.bernoulli(keep_)) continue;
      for (int iz = 0; iz < g.nz; ++iz)
        visible[(static_cast<std::size_t>(iz) * g.ny + iy) * g.nx + ix] = true;
    }
  return visible;
}

std::vector<sim::BeamCommand> UniformMasker::beam_plan(
    const sim::LidarConfig& lidar, Rng& rng) const {
  std::vector<sim::BeamCommand> plan;
  for (int az = 0; az < lidar.azimuth_steps; ++az)
    for (int el = 0; el < lidar.elevation_steps; ++el)
      if (rng.bernoulli(keep_))
        plan.push_back({az, el, lidar.max_range});
  return plan;
}

}  // namespace s2a::lidar
