// Batched lidar inference entry points for the fleet engines.
//
// A fleet of sensing loops that all run the same perception model is
// the multi-tenant serving shape: per member the forward is tiny, so
// the per-call fixed costs (weight packing, tensor/arena bookkeeping,
// pool dispatch) dominate. These adapters stack B members' occupancy
// grids along the leading batch axis (nn/batch.hpp) and run ONE model
// forward — the conv kernels pack each layer's weights once per call
// and shard the (image, output-row) band space across the pool — then
// scatter the per-member rows back.
//
// Bit-exactness: row i of a batched call is bit-identical to the B=1
// call on the same grid (the conv lowering never splits or reorders an
// element's reduction chain when images are added to the batch), so a
// BatchedFleet serving these is bit-exact per member vs a serial
// per-loop fleet — the contract core::BatchProcessor requires.
//
// Threading: the wrapped model is NOT thread-safe (layers keep
// last-input state and scratch arenas). Call these from one thread at
// a time — the BatchedFleet coordinator does; a per-loop Fleet must
// give each member its own model copy instead.
#pragma once

#include <vector>

#include "core/batched_fleet.hpp"
#include "lidar/autoencoder.hpp"
#include "lidar/detector.hpp"

namespace s2a::lidar {

/// core::BatchProcessor over OccupancyAutoencoder::reconstruct.
///
/// Observation payload: one flattened (masked) occupancy grid,
/// nz*ny*nx values in [nz][ny][nx] order (a VoxelGrid occupancy
/// tensor's layout). The action is the reconstructed occupancy
/// probability field, same layout. The rng parameter of process() is
/// ignored (deterministic model), as the BatchProcessor contract
/// requires.
class BatchedReconstructionProcessor : public core::BatchProcessor {
 public:
  /// `energy_per_call_j` is metered into the loop's processing-energy
  /// total per member tick, batched or not.
  explicit BatchedReconstructionProcessor(OccupancyAutoencoder& ae,
                                          double energy_per_call_j = 0.0);

  std::vector<double> process(const core::Observation& obs,
                              Rng& rng) override;
  std::vector<std::vector<double>> process_batch(
      const std::vector<const core::Observation*>& obs) override;
  double energy_per_call_j() const override { return energy_per_call_j_; }

  /// Grid shape served ([nz, ny, nx]); every payload must match.
  const std::vector<int>& sample_shape() const { return shape_; }

 private:
  OccupancyAutoencoder& ae_;
  std::vector<int> shape_;
  double energy_per_call_j_ = 0.0;
};

/// Scene embeddings of B grids in one encoder forward: row i is
/// bit-identical to OccupancyAutoencoder::embedding(grid_i).
/// `grids` is [B, nz, ny, nx]. (The detector-side equivalent is
/// BevDetector::feature_embeddings.)
std::vector<std::vector<double>> batched_embeddings(OccupancyAutoencoder& ae,
                                                    const nn::Tensor& grids);

}  // namespace s2a::lidar
