// Masking strategies for generative sensing (Sec. III).
//
// A masker plays two roles:
//  1. Pre-training: choose which voxels of a full occupancy grid stay
//     visible; the autoencoder learns to reconstruct the rest.
//  2. Active sensing: emit the beam firing plan (which beams pulse, and at
//     what reach) that realizes the same sampling pattern on the physical
//     sensor, which is where the energy saving comes from.
//
// RadialMasker is R-MAE's two-stage scheme: angular segments are sampled
// first, then a range-dependent keep probability thins distant beams —
// countering the R⁴ pulse-energy law. UniformMasker is the OccMAE-style
// baseline (range-agnostic), and SurfaceMasker approximates ALSO's
// surface-occupancy objective (light masking, loss concentrated near
// observed surfaces — see PretrainObjective in autoencoder.hpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lidar/voxel_grid.hpp"
#include "sim/lidar_sim.hpp"
#include "util/rng.hpp"

namespace s2a::lidar {

class Masker {
 public:
  virtual ~Masker() = default;
  virtual std::string name() const = 0;

  /// Per-voxel visibility for pre-training: true = voxel is sensed (its
  /// occupancy is shown to the encoder), false = masked (to reconstruct).
  virtual std::vector<bool> voxel_mask(const VoxelGrid& grid,
                                       Rng& rng) const = 0;

  /// Beam plan for an active scan realizing this strategy on the sensor.
  virtual std::vector<sim::BeamCommand> beam_plan(
      const sim::LidarConfig& lidar, Rng& rng) const = 0;

  /// Applies a voxel mask: masked voxels are zeroed in the returned
  /// [1,nz,ny,nx] tensor.
  static nn::Tensor apply_mask(const VoxelGrid& grid,
                               const std::vector<bool>& visible);
};

struct RadialMaskerConfig {
  int angular_segments = 24;          ///< stage-1 groups over 360°
  double segment_keep_fraction = 0.25;///< fraction of segments sensed
  double in_segment_keep = 0.36;      ///< stage-2 base keep probability
  double range_decay = 2.0;           ///< keep prob decays exp(-decay·r/r_max)
  /// Active sensing: fraction of fired beams that pulse at full rated
  /// range; the rest pulse at a cheap short reach.
  double far_pulse_fraction = 0.08;
  double near_reach_lo = 0.25, near_reach_hi = 0.5;  ///< × max range
};

class RadialMasker : public Masker {
 public:
  explicit RadialMasker(RadialMaskerConfig config = {}) : cfg_(config) {}
  std::string name() const override { return "R-MAE"; }
  std::vector<bool> voxel_mask(const VoxelGrid& grid, Rng& rng) const override;
  std::vector<sim::BeamCommand> beam_plan(const sim::LidarConfig& lidar,
                                          Rng& rng) const override;
  const RadialMaskerConfig& config() const { return cfg_; }

 private:
  std::vector<bool> pick_segments(Rng& rng) const;
  RadialMaskerConfig cfg_;
};

/// Range-agnostic uniform random masking (OccMAE-style). Fired beams pulse
/// at full power because a uniform sampler has no range structure to
/// exploit.
class UniformMasker : public Masker {
 public:
  explicit UniformMasker(double keep_fraction = 0.09, std::string name = "OccMAE")
      : keep_(keep_fraction), name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::vector<bool> voxel_mask(const VoxelGrid& grid, Rng& rng) const override;
  std::vector<sim::BeamCommand> beam_plan(const sim::LidarConfig& lidar,
                                          Rng& rng) const override;

 private:
  double keep_;
  std::string name_;
};

/// Light uniform masking used with the surface-weighted objective to
/// approximate ALSO's occupancy self-supervision.
class SurfaceMasker : public UniformMasker {
 public:
  SurfaceMasker() : UniformMasker(0.7, "ALSO") {}
};

}  // namespace s2a::lidar
