// Occupancy autoencoder for generative sensing (Fig. 3): a convolutional
// encoder over the (masked) BEV occupancy grid and a deconvolutional
// occupancy decoder trained with binary cross-entropy, reconstructing the
// full scene from a <10% sensed subset.
//
// The paper's encoder is a 3-D spatially sparse convolution network; here
// the nz height slices are channels of a dense 2-D convolution, which
// preserves the encode-masked/decode-full structure at in-process scale
// (see DESIGN.md).
#pragma once

#include <vector>

#include "lidar/masking.hpp"
#include "lidar/voxel_grid.hpp"
#include "nn/conv2d.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace s2a::lidar {

/// Pre-training objective flavors (Table I rows):
///  kOccupancyFull   — reconstruct every voxel (R-MAE, OccMAE).
///  kSurfaceWeighted — loss concentrated on voxels near observed surfaces
///                     (ALSO-style occupancy self-supervision).
enum class PretrainObjective { kOccupancyFull, kSurfaceWeighted };

struct AutoencoderConfig {
  VoxelGridConfig grid;
  int c1 = 16;  ///< first encoder channel width (stride 2)
  int c2 = 32;  ///< latent channel width (stride 4 overall)
  /// BCE weight on occupied target voxels. Occupancy grids are sparse
  /// (<5% positive); without upweighting, the decoder collapses to the
  /// all-empty prediction.
  double pos_weight = 12.0;
};

class OccupancyAutoencoder {
 public:
  OccupancyAutoencoder(AutoencoderConfig config, Rng& rng);

  /// Latent features [1, c2, ny/4, nx/4] of a (masked) occupancy tensor.
  nn::Tensor encode(const nn::Tensor& grid);
  /// Occupancy logits [1, nz, ny, nx] from a latent tensor.
  nn::Tensor decode(const nn::Tensor& latent);
  /// Full forward pass returning occupancy probabilities in [0, 1].
  nn::Tensor reconstruct(const nn::Tensor& masked_grid);

  /// One optimization step on (masked input → full target); returns the
  /// BCE loss. The optimizer must be attached via attach_optimizer().
  double train_step(const nn::Tensor& masked, const nn::Tensor& target,
                    nn::Optimizer& opt,
                    PretrainObjective objective = PretrainObjective::kOccupancyFull);

  /// Pools the latent over space: a fixed-size scene embedding [c2] used
  /// by the reliability monitor (STARNet ingests task-network features).
  std::vector<double> embedding(const nn::Tensor& grid);

  std::vector<nn::Tensor*> params();
  std::vector<nn::Tensor*> grads();
  std::size_t param_count();
  /// Forward MACs for one scan (encoder + decoder) — the Table II
  /// "FLOPs per 360° scan" quantity is 2× this.
  std::size_t macs_per_scan();

  /// Snapshots encoder + decoder weights into int8 (nn/quant.hpp). The
  /// int8 forward runs when the quant backend resolves to kInt8
  /// (S2A_QUANT=1); training keeps using float weights, so re-call after
  /// further train_step()s to refresh the snapshot.
  void quantize() {
    encoder_.quantize();
    decoder_.quantize();
  }
  bool is_quantized() const {
    return encoder_.is_quantized() && decoder_.is_quantized();
  }

  /// Encoder conv layers, exposed for weight transfer into detector
  /// backbones (the Table I pre-training experiment).
  nn::Conv2D& encoder_conv1() { return *conv1_; }
  nn::Conv2D& encoder_conv2() { return *conv2_; }
  const AutoencoderConfig& config() const { return cfg_; }

 private:
  AutoencoderConfig cfg_;
  nn::Sequential encoder_;
  nn::Sequential decoder_;
  nn::Conv2D* conv1_ = nullptr;
  nn::Conv2D* conv2_ = nullptr;
};

/// Surface weighting for the ALSO-style objective: weight 1 for voxels
/// within one cell of an occupied voxel in `target`, `far_weight`
/// elsewhere. Exposed for tests.
std::vector<double> surface_weights(const nn::Tensor& target,
                                    const VoxelGridConfig& grid,
                                    double far_weight = 0.1);

}  // namespace s2a::lidar
