#include "lidar/energy.hpp"

namespace s2a::lidar {

EnergyReport make_energy_report(const sim::PointCloud& cloud,
                                const sim::LidarConfig& config,
                                std::size_t model_params,
                                std::size_t model_macs,
                                bool int8_inference) {
  EnergyReport r;
  r.coverage = cloud.coverage(config);
  r.avg_pulse_energy_j =
      cloud.pulses_fired > 0 ? cloud.emitted_energy_j / cloud.pulses_fired
                             : 0.0;
  r.model_params = model_params;
  r.sensing_energy_j = cloud.emitted_energy_j;
  if (int8_inference) {
    r.int8_macs_per_scan = model_macs;
    r.reconstruction_energy_j =
        static_cast<double>(model_macs) * kJoulesPerInt8Mac;
  } else {
    r.flops_per_scan = 2 * model_macs;
    r.reconstruction_energy_j =
        static_cast<double>(r.flops_per_scan) * kJoulesPerFlop;
  }
  return r;
}

}  // namespace s2a::lidar
