// Energy accounting for conventional vs generative sensing (Table II).
//
// Sensing energy is integrated directly from the simulator's per-pulse
// emissions; reconstruction overhead converts the autoencoder's FLOP count
// at a fixed edge-accelerator efficiency. The paper reports 335 MFLOPs →
// 7.1 mJ, i.e. ≈21 pJ/FLOP, which we adopt as the conversion constant.
//
// The int8 inference path (nn/quant.hpp, S2A_QUANT=1) gets its own
// per-MAC constant: Horowitz-style accounting puts an 8-bit MAC at
// roughly 4–8x below an FP32 one at the same node, and we take 4x —
// conservative for the energy/accuracy frontier the quantization bench
// sweeps (bench_table2_lidar_energy). An int8-quantized scan reports its
// MACs in int8_macs_per_scan and is billed at kJoulesPerInt8Mac; float
// scans leave that field zero.
#pragma once

#include <cstddef>

#include "sim/lidar_sim.hpp"

namespace s2a::lidar {

inline constexpr double kJoulesPerFlop = 21.2e-12;
/// One int8 MAC at ~4x below the fp32 cost above (Horowitz, ISSCC'14
/// scaling: 8-bit multiply ≈ 0.2 pJ vs fp32 ≈ 3.7 pJ, plus shared
/// access overheads that keep the realized ratio nearer 4x than 18x).
inline constexpr double kJoulesPerInt8Mac = 5.3e-12;

struct EnergyReport {
  double coverage = 0.0;              ///< fired beams / total beams
  double avg_pulse_energy_j = 0.0;
  std::size_t model_params = 0;
  std::size_t flops_per_scan = 0;     ///< 2 × MACs (float path)
  std::size_t int8_macs_per_scan = 0; ///< MACs billed at int8 cost
  double sensing_energy_j = 0.0;      ///< per 360° scan
  double reconstruction_energy_j = 0.0;
  double total_energy_j() const {
    return sensing_energy_j + reconstruction_energy_j;
  }
};

/// Accounts a scan that used `model_macs` of reconstruction compute
/// (0 for conventional scans). With int8_inference, the same MACs are
/// billed at kJoulesPerInt8Mac instead of 2 × kJoulesPerFlop —
/// model_macs keeps meaning MACs either way.
EnergyReport make_energy_report(const sim::PointCloud& cloud,
                                const sim::LidarConfig& config,
                                std::size_t model_params,
                                std::size_t model_macs,
                                bool int8_inference = false);

}  // namespace s2a::lidar
