// Energy accounting for conventional vs generative sensing (Table II).
//
// Sensing energy is integrated directly from the simulator's per-pulse
// emissions; reconstruction overhead converts the autoencoder's FLOP count
// at a fixed edge-accelerator efficiency. The paper reports 335 MFLOPs →
// 7.1 mJ, i.e. ≈21 pJ/FLOP, which we adopt as the conversion constant.
#pragma once

#include <cstddef>

#include "sim/lidar_sim.hpp"

namespace s2a::lidar {

inline constexpr double kJoulesPerFlop = 21.2e-12;

struct EnergyReport {
  double coverage = 0.0;              ///< fired beams / total beams
  double avg_pulse_energy_j = 0.0;
  std::size_t model_params = 0;
  std::size_t flops_per_scan = 0;     ///< 2 × MACs
  double sensing_energy_j = 0.0;      ///< per 360° scan
  double reconstruction_energy_j = 0.0;
  double total_energy_j() const {
    return sensing_energy_j + reconstruction_energy_j;
  }
};

/// Accounts a scan that used `model_macs` of reconstruction compute
/// (0 for conventional scans).
EnergyReport make_energy_report(const sim::PointCloud& cloud,
                                const sim::LidarConfig& config,
                                std::size_t model_params,
                                std::size_t model_macs);

}  // namespace s2a::lidar
