// BEV object detectors over occupancy grids.
//
// Two architectures mirror the Table I detector families at in-process
// scale:
//  * BevDetector        — single-stage, anchor-free center heatmap +
//                         offset regression ("SECOND-lite").
//  * TwoStageDetector   — the same first stage plus point-feature proposal
//                         refinement ("PV-RCNN-lite").
//
// The pre-training experiment of Table I transfers the occupancy
// autoencoder's encoder weights into the detector backbone via
// init_from_pretrained().
#pragma once

#include <array>
#include <vector>

#include "lidar/autoencoder.hpp"
#include "lidar/voxel_grid.hpp"
#include "nn/conv2d.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "sim/scene.hpp"

namespace s2a::lidar {

struct Detection {
  sim::ObjectClass cls = sim::ObjectClass::kCar;
  Box3 box;
  double score = 0.0;
};

struct DetectorConfig {
  VoxelGridConfig grid;
  int c1 = 16, c2 = 32;          ///< backbone widths (match the AE encoder)
  double score_threshold = 0.30;
  double positive_weight = 40.0; ///< BCE weight on (rare) positive cells
  /// BEV IoU required to count a detection as a match, per class
  /// (Car, Pedestrian, Cyclist). Looser than KITTI's 0.7/0.5/0.5 because
  /// boxes use archetype sizes (see DESIGN.md).
  std::array<double, 3> iou_thresholds{0.5, 0.25, 0.25};
  /// nuScenes-style matching radii (m): at this grid resolution (~2 m
  /// voxels) IoU matching is meaningless for sub-voxel classes like
  /// pedestrians, so the AP experiments match by BEV center distance —
  /// the same reason nuScenes' detection metric does.
  std::array<double, 3> match_distance{2.0, 1.5, 1.5};
};

/// Single-stage center-heatmap detector.
class BevDetector {
 public:
  BevDetector(DetectorConfig config, Rng& rng);

  /// Copies the autoencoder's encoder weights into the backbone (the
  /// "+pretraining" rows of Table I). Architectures must match.
  void init_from_pretrained(OccupancyAutoencoder& ae);

  std::vector<Detection> detect(const nn::Tensor& grid);
  /// One supervised step against scene ground truth; returns total loss.
  double train_step(const nn::Tensor& grid, const sim::Scene& gt,
                    nn::Optimizer& opt);

  /// Spatially pooled backbone features — the embedding STARNet monitors.
  std::vector<double> feature_embedding(const nn::Tensor& grid);
  /// Batched feature_embedding: one backbone forward over a
  /// [B, nz, ny, nx] stack (lidar/batched.hpp); row i is bit-identical
  /// to feature_embedding(grid_i).
  std::vector<std::vector<double>> feature_embeddings(const nn::Tensor& grids);
  int embedding_dim() const { return cfg_.c2; }

  std::vector<nn::Tensor*> params();
  std::vector<nn::Tensor*> grads();
  std::size_t param_count();
  const DetectorConfig& config() const { return cfg_; }

  /// Int8 snapshot of backbone + heads (see OccupancyAutoencoder::
  /// quantize for the semantics).
  void quantize() {
    backbone_.quantize();
    cls_head_.quantize();
    off_head_.quantize();
  }
  bool is_quantized() const {
    return backbone_.is_quantized() && cls_head_.is_quantized() &&
           off_head_.is_quantized();
  }

 private:
  friend class TwoStageDetector;
  struct Forward {
    nn::Tensor cls_logits;  // [1, 3, ny/2, nx/2]
    nn::Tensor offsets;     // [1, 2, ny/2, nx/2]
  };
  Forward forward(const nn::Tensor& grid);
  void backward(const nn::Tensor& dcls, const nn::Tensor& doff);
  /// Map cell (stride-2) center to sensor-frame x/y.
  Vec3 cell_center(int cx, int cy) const;

  DetectorConfig cfg_;
  int h2_, w2_;  // stride-2 map size
  nn::Sequential backbone_;  // conv1 ReLU conv2 ReLU deconv ReLU -> [c1, h2, w2]
  nn::Conv2D* conv1_ = nullptr;
  nn::Conv2D* conv2_ = nullptr;
  nn::Sequential cls_head_;   // 1x1 conv -> 3
  nn::Sequential off_head_;   // 1x1 conv -> 2
  nn::Tensor last_neck_;
};

/// Two-stage detector: BevDetector proposals + point-statistics refinement.
class TwoStageDetector {
 public:
  TwoStageDetector(DetectorConfig config, Rng& rng);

  void init_from_pretrained(OccupancyAutoencoder& ae) {
    rpn_.init_from_pretrained(ae);
  }

  std::vector<Detection> detect(const nn::Tensor& grid,
                                const sim::PointCloud& cloud);
  double train_step(const nn::Tensor& grid, const sim::PointCloud& cloud,
                    const sim::Scene& gt, nn::Optimizer& rpn_opt,
                    nn::Optimizer& refine_opt);

  BevDetector& rpn() { return rpn_; }
  std::vector<nn::Tensor*> refine_params() { return refine_.params(); }
  std::vector<nn::Tensor*> refine_grads() { return refine_.grads(); }
  std::size_t param_count() { return rpn_.param_count() + refine_.param_count(); }

  /// Point statistics inside an (enlarged) proposal box; exposed for tests.
  static std::vector<double> proposal_features(const Detection& proposal,
                                               const sim::PointCloud& cloud);

 private:
  DetectorConfig cfg_;
  BevDetector rpn_;
  nn::Sequential refine_;  // features -> [score_logit, dx, dy]
};

/// Greedy score-ordered matching + KITTI-style interpolated AP for one
/// class over a set of scenes, matching by BEV IoU.
double evaluate_ap(const std::vector<std::vector<Detection>>& detections,
                   const std::vector<sim::Scene>& scenes,
                   sim::ObjectClass cls, double iou_threshold);

/// Same AP computation with nuScenes-style BEV center-distance matching
/// (a detection matches an unmatched ground truth within `max_distance`
/// metres). Preferred at coarse grid resolutions.
double evaluate_ap_distance(const std::vector<std::vector<Detection>>& detections,
                            const std::vector<sim::Scene>& scenes,
                            sim::ObjectClass cls, double max_distance);

}  // namespace s2a::lidar
