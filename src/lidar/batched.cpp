#include "lidar/batched.hpp"

#include "nn/batch.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::lidar {

BatchedReconstructionProcessor::BatchedReconstructionProcessor(
    OccupancyAutoencoder& ae, double energy_per_call_j)
    : ae_(ae), energy_per_call_j_(energy_per_call_j) {
  const VoxelGridConfig& g = ae.config().grid;
  shape_ = {g.nz, g.ny, g.nx};
}

std::vector<double> BatchedReconstructionProcessor::process(
    const core::Observation& obs, Rng& /*rng*/) {
  // Serial path: the same arithmetic as a batch of one. Used by loops
  // running outside a batched dispatch (tick()/run()/per-loop Fleet).
  std::vector<const std::vector<double>*> one{&obs.data};
  nn::Tensor x = nn::stack_batch(one, shape_);
  return nn::unstack_batch(ae_.reconstruct(x)).front();
}

std::vector<std::vector<double>> BatchedReconstructionProcessor::process_batch(
    const std::vector<const core::Observation*>& obs) {
  S2A_CHECK(!obs.empty());
  S2A_TRACE_SCOPE_CAT("lidar.batched_reconstruct", "lidar");
  std::vector<const std::vector<double>*> samples;
  samples.reserve(obs.size());
  for (const core::Observation* o : obs) {
    S2A_CHECK(o != nullptr);
    samples.push_back(&o->data);
  }
  nn::Tensor x = nn::stack_batch(samples, shape_);
  return nn::unstack_batch(ae_.reconstruct(x));
}

std::vector<std::vector<double>> batched_embeddings(OccupancyAutoencoder& ae,
                                                    const nn::Tensor& grids) {
  S2A_CHECK(grids.shape().size() == 4);
  const nn::Tensor z = ae.encode(grids);
  const int n = z.dim(0), c = z.dim(1), h = z.dim(2), w = z.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    std::vector<double> e(static_cast<std::size_t>(c), 0.0);
    const double* zb = z.data() + static_cast<std::size_t>(b) * c * plane;
    for (int ci = 0; ci < c; ++ci) {
      double s = 0.0;
      const double* row = zb + static_cast<std::size_t>(ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) s += row[i];
      e[static_cast<std::size_t>(ci)] = s / static_cast<double>(plane);
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace s2a::lidar
