#include "lidar/detector.hpp"

#include <algorithm>
#include <functional>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace s2a::lidar {

namespace {
constexpr int kNumClasses = sim::kNumObjectClasses;

inline std::size_t idx_chw(int c, int y, int x, int h, int w) {
  return (static_cast<std::size_t>(c) * h + y) * w + x;
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

BevDetector::BevDetector(DetectorConfig config, Rng& rng) : cfg_(config) {
  S2A_CHECK(cfg_.grid.nx % 4 == 0 && cfg_.grid.ny % 4 == 0);
  h2_ = cfg_.grid.ny / 2;
  w2_ = cfg_.grid.nx / 2;

  conv1_ = &backbone_.emplace<nn::Conv2D>(cfg_.grid.nz, cfg_.c1, 3, 2, 1, rng);
  backbone_.emplace<nn::ReLU>();
  conv2_ = &backbone_.emplace<nn::Conv2D>(cfg_.c1, cfg_.c2, 3, 2, 1, rng);
  backbone_.emplace<nn::ReLU>();
  backbone_.emplace<nn::ConvTranspose2D>(cfg_.c2, cfg_.c1, 4, 2, 1, rng);
  backbone_.emplace<nn::ReLU>();

  cls_head_.emplace<nn::Conv2D>(cfg_.c1, kNumClasses, 1, 1, 0, rng);
  off_head_.emplace<nn::Conv2D>(cfg_.c1, 2, 1, 1, 0, rng);
}

void BevDetector::init_from_pretrained(OccupancyAutoencoder& ae) {
  // Copy, then renormalize each filter bank to the He-init scale: the
  // autoencoder's weighted BCE inflates weight norms, and ReLU stacks are
  // (per-layer) scale-equivariant, so rescaling preserves the pretrained
  // feature directions while keeping fine-tuning dynamics comparable to a
  // scratch initialization.
  auto copy = [](nn::Conv2D& dst, nn::Conv2D& src) {
    auto dp = dst.params();
    auto sp = src.params();
    S2A_CHECK(dp.size() == sp.size());
    for (std::size_t i = 0; i < dp.size(); ++i) {
      S2A_CHECK_MSG(dp[i]->same_shape(*sp[i]),
                    "pretrained weight shape mismatch — detector and "
                    "autoencoder architectures must agree");
      *dp[i] = *sp[i];
    }
    nn::Tensor& w = *dp[0];
    double mean = 0.0;
    for (std::size_t i = 0; i < w.numel(); ++i) mean += w[i];
    mean /= static_cast<double>(w.numel());
    double var = 0.0;
    for (std::size_t i = 0; i < w.numel(); ++i)
      var += (w[i] - mean) * (w[i] - mean);
    var /= static_cast<double>(w.numel());
    const double target = std::sqrt(
        2.0 / (dst.in_channels() * dst.kernel() * dst.kernel()));
    const double scale = target / std::max(1e-9, std::sqrt(var));
    for (std::size_t i = 0; i < w.numel(); ++i) w[i] *= scale;
    dp[1]->fill(0.0);  // biases restart at zero
  };
  copy(*conv1_, ae.encoder_conv1());
  copy(*conv2_, ae.encoder_conv2());
}

BevDetector::Forward BevDetector::forward(const nn::Tensor& grid) {
  last_neck_ = backbone_.forward(grid);
  Forward f;
  f.cls_logits = cls_head_.forward(last_neck_);
  f.offsets = off_head_.forward(last_neck_);
  return f;
}

void BevDetector::backward(const nn::Tensor& dcls, const nn::Tensor& doff) {
  nn::Tensor dneck = cls_head_.backward(dcls);
  dneck.add_scaled(off_head_.backward(doff), 1.0);
  backbone_.backward(dneck);
}

Vec3 BevDetector::cell_center(int cx, int cy) const {
  const double cell_w = 2.0 * cfg_.grid.extent / w2_;
  const double cell_h = 2.0 * cfg_.grid.extent / h2_;
  return {-cfg_.grid.extent + (cx + 0.5) * cell_w,
          -cfg_.grid.extent + (cy + 0.5) * cell_h, 0.0};
}

std::vector<Detection> BevDetector::detect(const nn::Tensor& grid) {
  S2A_TRACE_SCOPE_CAT("lidar.detect", "lidar");
  const Forward f = forward(grid);
  const double cell_w = 2.0 * cfg_.grid.extent / w2_;
  const double cell_h = 2.0 * cfg_.grid.extent / h2_;

  std::vector<Detection> out;
  for (int c = 0; c < kNumClasses; ++c) {
    for (int y = 0; y < h2_; ++y)
      for (int x = 0; x < w2_; ++x) {
        const double logit = f.cls_logits[idx_chw(c, y, x, h2_, w2_)];
        const double score = sigmoid(logit);
        if (score < cfg_.score_threshold) continue;
        // 3×3 same-class local maximum (greedy NMS on the heatmap).
        bool is_max = true;
        for (int dy = -1; dy <= 1 && is_max; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            const int yy = y + dy, xx = x + dx;
            if (yy < 0 || yy >= h2_ || xx < 0 || xx >= w2_) continue;
            if (f.cls_logits[idx_chw(c, yy, xx, h2_, w2_)] > logit) {
              is_max = false;
              break;
            }
          }
        if (!is_max) continue;

        const double ox =
            std::clamp(f.offsets[idx_chw(0, y, x, h2_, w2_)], -0.5, 0.5);
        const double oy =
            std::clamp(f.offsets[idx_chw(1, y, x, h2_, w2_)], -0.5, 0.5);
        Detection d;
        d.cls = static_cast<sim::ObjectClass>(c);
        d.score = score;
        const Vec3 cc = cell_center(x, y);
        const Vec3 size = sim::class_archetype_size(d.cls);
        d.box.center = {cc.x + ox * cell_w, cc.y + oy * cell_h, size.z / 2.0};
        d.box.size = size;
        out.push_back(d);
      }
  }
  S2A_COUNTER_ADD("lidar.detections",
                  static_cast<std::int64_t>(out.size()));
  return out;
}

double BevDetector::train_step(const nn::Tensor& grid, const sim::Scene& gt,
                               nn::Optimizer& opt) {
  opt.zero_grad();
  const Forward f = forward(grid);
  const double cell_w = 2.0 * cfg_.grid.extent / w2_;
  const double cell_h = 2.0 * cfg_.grid.extent / h2_;

  // Build targets.
  nn::Tensor cls_target({1, kNumClasses, h2_, w2_});
  nn::Tensor off_target({1, 2, h2_, w2_});
  std::vector<bool> has_obj(static_cast<std::size_t>(h2_) * w2_, false);
  for (const auto& obj : gt.objects) {
    const double fx = (obj.box.center.x + cfg_.grid.extent) / cell_w;
    const double fy = (obj.box.center.y + cfg_.grid.extent) / cell_h;
    const int cx = static_cast<int>(fx), cy = static_cast<int>(fy);
    if (cx < 0 || cx >= w2_ || cy < 0 || cy >= h2_) continue;
    cls_target[idx_chw(static_cast<int>(obj.cls), cy, cx, h2_, w2_)] = 1.0;
    off_target[idx_chw(0, cy, cx, h2_, w2_)] = fx - cx - 0.5;
    off_target[idx_chw(1, cy, cx, h2_, w2_)] = fy - cy - 0.5;
    has_obj[static_cast<std::size_t>(cy) * w2_ + cx] = true;
  }

  // Weighted BCE on class heatmaps.
  auto cls_loss = nn::bce_with_logits(f.cls_logits, cls_target);
  double total = 0.0;
  for (std::size_t i = 0; i < cls_loss.grad.numel(); ++i) {
    if (cls_target[i] > 0.5) cls_loss.grad[i] *= cfg_.positive_weight;
  }
  total += cls_loss.value;

  // Offset MSE only at object cells.
  auto off_loss = nn::mse_loss(f.offsets, off_target);
  for (int ch = 0; ch < 2; ++ch)
    for (int y = 0; y < h2_; ++y)
      for (int x = 0; x < w2_; ++x)
        if (!has_obj[static_cast<std::size_t>(y) * w2_ + x])
          off_loss.grad[idx_chw(ch, y, x, h2_, w2_)] = 0.0;
  total += off_loss.value;

  backward(cls_loss.grad, off_loss.grad);
  opt.step();
  return total;
}

std::vector<double> BevDetector::feature_embedding(const nn::Tensor& grid) {
  // Pool the stride-4 backbone features (after conv2+ReLU): run the first
  // four backbone layers only.
  nn::Tensor h = grid;
  for (std::size_t i = 0; i < 4; ++i) h = backbone_.layer(i).forward(h);
  const int c = h.dim(1), hh = h.dim(2), ww = h.dim(3);
  std::vector<double> e(static_cast<std::size_t>(c), 0.0);
  for (int ci = 0; ci < c; ++ci) {
    double s = 0.0;
    for (int i = 0; i < hh * ww; ++i)
      s += h[static_cast<std::size_t>(ci) * hh * ww + i];
    e[static_cast<std::size_t>(ci)] = s / (hh * ww);
  }
  return e;
}

std::vector<std::vector<double>> BevDetector::feature_embeddings(
    const nn::Tensor& grids) {
  // One backbone forward over the whole [B, nz, ny, nx] stack; the
  // batch-first conv kernels make row b's features bit-identical to a
  // B=1 forward, and the per-image pooling below repeats
  // feature_embedding's accumulation order exactly.
  nn::Tensor h = grids;
  for (std::size_t i = 0; i < 4; ++i) h = backbone_.layer(i).forward(h);
  const int n = h.dim(0), c = h.dim(1), hh = h.dim(2), ww = h.dim(3);
  const std::size_t plane = static_cast<std::size_t>(hh) * ww;
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    const double* hb = h.data() + static_cast<std::size_t>(b) * c * plane;
    std::vector<double> e(static_cast<std::size_t>(c), 0.0);
    for (int ci = 0; ci < c; ++ci) {
      double s = 0.0;
      const double* row = hb + static_cast<std::size_t>(ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) s += row[i];
      e[static_cast<std::size_t>(ci)] = s / static_cast<double>(plane);
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<nn::Tensor*> BevDetector::params() {
  auto p = backbone_.params();
  for (auto* q : cls_head_.params()) p.push_back(q);
  for (auto* q : off_head_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> BevDetector::grads() {
  auto g = backbone_.grads();
  for (auto* q : cls_head_.grads()) g.push_back(q);
  for (auto* q : off_head_.grads()) g.push_back(q);
  return g;
}

std::size_t BevDetector::param_count() {
  return backbone_.param_count() + cls_head_.param_count() +
         off_head_.param_count();
}

TwoStageDetector::TwoStageDetector(DetectorConfig config, Rng& rng)
    : cfg_(config), rpn_(config, rng) {
  // 11 proposal features -> refinement score + center delta.
  refine_.emplace<nn::Dense>(11, 32, rng);
  refine_.emplace<nn::ReLU>();
  refine_.emplace<nn::Dense>(32, 3, rng);
}

std::vector<double> TwoStageDetector::proposal_features(
    const Detection& proposal, const sim::PointCloud& cloud) {
  Box3 roi = proposal.box;
  roi.size = roi.size * 1.5;  // enlarge to catch boundary points
  roi.size.z += 1.0;

  std::vector<Vec3> pts;
  for (const auto& r : cloud.returns)
    if (r.hit && roi.contains(r.point)) pts.push_back(r.point);

  std::vector<double> feat(11, 0.0);
  feat[0] = std::min(1.0, pts.size() / 50.0);
  if (!pts.empty()) {
    Vec3 lo = pts[0], hi = pts[0];
    RunningStat z_stat, range_stat;
    for (const auto& p : pts) {
      lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
      hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
      z_stat.add(p.z);
      range_stat.add(p.range_xy());
    }
    feat[1] = z_stat.mean();
    feat[2] = z_stat.stddev();
    feat[3] = (hi.x - lo.x) / 4.0;
    feat[4] = (hi.y - lo.y) / 2.0;
    feat[5] = (hi.z - lo.z) / 2.0;
    feat[6] = range_stat.mean() / 50.0;
  }
  feat[7] = proposal.score;
  feat[static_cast<std::size_t>(8 + static_cast<int>(proposal.cls))] = 1.0;
  return feat;
}

std::vector<Detection> TwoStageDetector::detect(const nn::Tensor& grid,
                                                const sim::PointCloud& cloud) {
  // Lower first-stage threshold: the refiner re-scores.
  const double saved = rpn_.cfg_.score_threshold;
  rpn_.cfg_.score_threshold = std::min(saved, 0.15);
  std::vector<Detection> proposals = rpn_.detect(grid);
  rpn_.cfg_.score_threshold = saved;

  const double cell =
      2.0 * cfg_.grid.extent / (cfg_.grid.nx / 2);
  std::vector<Detection> out;
  for (auto& p : proposals) {
    const auto feat = proposal_features(p, cloud);
    nn::Tensor x({1, 11}, std::vector<double>(feat.begin(), feat.end()));
    const nn::Tensor y = refine_.forward(x);
    Detection d = p;
    // Blend first-stage confidence with the refinement score: the refiner
    // re-ranks but a weak refiner cannot erase a confident proposal.
    d.score = 0.5 * (p.score + sigmoid(y[0]));
    d.box.center.x += std::clamp(y[1], -1.0, 1.0) * cell * 0.25;
    d.box.center.y += std::clamp(y[2], -1.0, 1.0) * cell * 0.25;
    if (d.score >= cfg_.score_threshold) out.push_back(d);
  }
  return out;
}

double TwoStageDetector::train_step(const nn::Tensor& grid,
                                    const sim::PointCloud& cloud,
                                    const sim::Scene& gt,
                                    nn::Optimizer& rpn_opt,
                                    nn::Optimizer& refine_opt) {
  double total = rpn_.train_step(grid, gt, rpn_opt);

  // Stage 2: label proposals against ground truth and regress deltas.
  const double saved = rpn_.cfg_.score_threshold;
  rpn_.cfg_.score_threshold = 0.15;
  std::vector<Detection> proposals = rpn_.detect(grid);
  rpn_.cfg_.score_threshold = saved;
  if (proposals.empty()) return total;

  const double cell = 2.0 * cfg_.grid.extent / (cfg_.grid.nx / 2);
  refine_opt.zero_grad();
  double stage2 = 0.0;
  for (const auto& p : proposals) {
    // Nearest same-class ground truth (center distance, matching the
    // nuScenes-style evaluation criterion at this grid resolution).
    double best_dist = std::numeric_limits<double>::infinity();
    Vec3 best_center = p.box.center;
    for (const auto& obj : gt.objects) {
      if (obj.cls != p.cls) continue;
      const double dx = p.box.center.x - obj.box.center.x;
      const double dy = p.box.center.y - obj.box.center.y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (dist < best_dist) {
        best_dist = dist;
        best_center = obj.box.center;
      }
    }
    const double thr =
        cfg_.match_distance[static_cast<std::size_t>(static_cast<int>(p.cls))];
    const double label = best_dist <= thr ? 1.0 : 0.0;

    const auto feat = proposal_features(p, cloud);
    nn::Tensor x({1, 11}, std::vector<double>(feat.begin(), feat.end()));
    const nn::Tensor y = refine_.forward(x);

    nn::Tensor dy({1, 3});
    // Score BCE.
    const double s = sigmoid(y[0]);
    stage2 += -(label * std::log(std::max(s, 1e-12)) +
                (1 - label) * std::log(std::max(1 - s, 1e-12)));
    dy[0] = s - label;
    // Center delta regression (only for positives).
    if (label > 0.5) {
      const double tx =
          std::clamp((best_center.x - p.box.center.x) / (cell * 0.25), -1.0, 1.0);
      const double ty =
          std::clamp((best_center.y - p.box.center.y) / (cell * 0.25), -1.0, 1.0);
      stage2 += (y[1] - tx) * (y[1] - tx) + (y[2] - ty) * (y[2] - ty);
      dy[1] = 2.0 * (y[1] - tx);
      dy[2] = 2.0 * (y[2] - ty);
    }
    refine_.backward(dy);
  }
  refine_opt.step();
  return total + stage2 / proposals.size();
}

namespace {

// Shared matching + AP skeleton: `affinity` returns a match quality
// (higher is better) or a negative value for "cannot match".
double evaluate_ap_impl(
    const std::vector<std::vector<Detection>>& detections,
    const std::vector<sim::Scene>& scenes, sim::ObjectClass cls,
    const std::function<double(const Detection&, const Box3&)>& affinity) {
  S2A_CHECK(detections.size() == scenes.size());

  struct Tagged {
    double score;
    std::size_t scene;
    const Detection* det;
  };
  std::vector<Tagged> all;
  int num_gt = 0;
  for (std::size_t s = 0; s < scenes.size(); ++s) {
    for (const auto& obj : scenes[s].objects)
      if (obj.cls == cls) ++num_gt;
    for (const auto& d : detections[s])
      if (d.cls == cls) all.push_back({d.score, s, &d});
  }
  std::sort(all.begin(), all.end(),
            [](const Tagged& a, const Tagged& b) { return a.score > b.score; });

  std::vector<std::vector<bool>> gt_used(scenes.size());
  for (std::size_t s = 0; s < scenes.size(); ++s)
    gt_used[s].assign(scenes[s].objects.size(), false);

  std::vector<std::pair<double, bool>> scored;
  scored.reserve(all.size());
  for (const auto& t : all) {
    double best = -1.0;
    std::size_t best_gt = 0;
    const auto& objs = scenes[t.scene].objects;
    for (std::size_t g = 0; g < objs.size(); ++g) {
      if (objs[g].cls != cls || gt_used[t.scene][g]) continue;
      const double a = affinity(*t.det, objs[g].box);
      if (a > best) {
        best = a;
        best_gt = g;
      }
    }
    const bool matched = best >= 0.0;
    if (matched) gt_used[t.scene][best_gt] = true;
    scored.push_back({t.score, matched});
  }
  return average_precision(std::move(scored), num_gt);
}

}  // namespace

double evaluate_ap_distance(
    const std::vector<std::vector<Detection>>& detections,
    const std::vector<sim::Scene>& scenes, sim::ObjectClass cls,
    double max_distance) {
  return evaluate_ap_impl(
      detections, scenes, cls,
      [max_distance](const Detection& d, const Box3& gt) {
        const double dx = d.box.center.x - gt.center.x;
        const double dy = d.box.center.y - gt.center.y;
        const double dist = std::sqrt(dx * dx + dy * dy);
        return dist <= max_distance ? max_distance - dist : -1.0;
      });
}

double evaluate_ap(const std::vector<std::vector<Detection>>& detections,
                   const std::vector<sim::Scene>& scenes,
                   sim::ObjectClass cls, double iou_threshold) {
  S2A_CHECK(detections.size() == scenes.size());

  // Gather class detections tagged by scene, sorted globally by score.
  struct Tagged {
    double score;
    std::size_t scene;
    const Detection* det;
  };
  std::vector<Tagged> all;
  int num_gt = 0;
  for (std::size_t s = 0; s < scenes.size(); ++s) {
    for (const auto& obj : scenes[s].objects)
      if (obj.cls == cls) ++num_gt;
    for (const auto& d : detections[s])
      if (d.cls == cls) all.push_back({d.score, s, &d});
  }
  std::sort(all.begin(), all.end(),
            [](const Tagged& a, const Tagged& b) { return a.score > b.score; });

  std::vector<std::vector<bool>> gt_used(scenes.size());
  for (std::size_t s = 0; s < scenes.size(); ++s)
    gt_used[s].assign(scenes[s].objects.size(), false);

  std::vector<std::pair<double, bool>> scored;
  scored.reserve(all.size());
  for (const auto& t : all) {
    double best_iou = 0.0;
    std::size_t best_gt = 0;
    const auto& objs = scenes[t.scene].objects;
    for (std::size_t g = 0; g < objs.size(); ++g) {
      if (objs[g].cls != cls || gt_used[t.scene][g]) continue;
      const double iou = iou_bev(t.det->box, objs[g].box);
      if (iou > best_iou) {
        best_iou = iou;
        best_gt = g;
      }
    }
    const bool matched = best_iou >= iou_threshold;
    if (matched) gt_used[t.scene][best_gt] = true;
    scored.push_back({t.score, matched});
  }
  return average_precision(std::move(scored), num_gt);
}

}  // namespace s2a::lidar
