// Occupancy voxelization of LiDAR point clouds.
//
// The grid covers a square [-extent, extent]² footprint and [ground,
// z_max] in height, stored as nz BEV channels — the layout the occupancy
// autoencoder (Fig. 3) and the BEV detectors consume directly as a
// [1, nz, ny, nx] tensor.
#pragma once

#include <vector>

#include "nn/tensor.hpp"
#include "sim/lidar_sim.hpp"

namespace s2a::lidar {

struct VoxelGridConfig {
  int nx = 48, ny = 48, nz = 4;
  double extent = 50.0;  ///< metres from the sensor in x and y
  double z_min = 0.0, z_max = 4.0;

  double cell_x() const { return 2.0 * extent / nx; }
  double cell_y() const { return 2.0 * extent / ny; }
  double cell_z() const { return (z_max - z_min) / nz; }
};

class VoxelGrid {
 public:
  explicit VoxelGrid(VoxelGridConfig config = {});

  /// Marks every voxel containing at least one LiDAR hit. Ground returns
  /// (z within `ground_tolerance` of z_min) are excluded so occupancy
  /// reflects objects, not the road surface.
  static VoxelGrid from_cloud(const sim::PointCloud& cloud,
                              const VoxelGridConfig& config,
                              double ground_tolerance = 0.3);

  const VoxelGridConfig& config() const { return cfg_; }
  bool occupied(int ix, int iy, int iz) const;
  void set(int ix, int iy, int iz, bool value);
  std::size_t occupied_count() const;
  std::size_t voxel_count() const;

  /// Voxel center in sensor-frame coordinates.
  Vec3 voxel_center(int ix, int iy, int iz) const;
  /// Horizontal range and azimuth (radians in [0, 2π)) of a voxel center.
  double voxel_range(int ix, int iy) const;
  double voxel_azimuth(int ix, int iy) const;

  /// [1, nz, ny, nx] occupancy tensor (values 0/1) for the networks.
  nn::Tensor to_tensor() const;
  /// Inverse of to_tensor with thresholding at 0.5.
  static VoxelGrid from_tensor(const nn::Tensor& t,
                               const VoxelGridConfig& config);

  /// Intersection-over-union of occupied voxel sets (reconstruction metric).
  double iou(const VoxelGrid& other) const;

 private:
  std::size_t index(int ix, int iy, int iz) const;

  VoxelGridConfig cfg_;
  std::vector<bool> occ_;
};

}  // namespace s2a::lidar
