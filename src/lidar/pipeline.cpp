#include "lidar/pipeline.hpp"

#include "nn/optimizer.hpp"
#include "nn/quant.hpp"
#include "obs/obs.hpp"
#include "sim/scene.hpp"
#include "util/check.hpp"

namespace s2a::lidar {

GenerativeSensingPipeline::GenerativeSensingPipeline(
    sim::LidarConfig lidar_config, AutoencoderConfig ae_config,
    RadialMaskerConfig masker_config, Rng& rng)
    : lidar_(lidar_config), masker_(masker_config), ae_(ae_config, rng) {}

double GenerativeSensingPipeline::pretrain(
    int num_scenes, int epochs, double lr, Rng& rng,
    const sim::SceneConfig& scene_config) {
  S2A_CHECK(num_scenes > 0 && epochs > 0);
  const auto& grid_cfg = ae_.config().grid;

  // Pre-voxelize full scans once.
  std::vector<nn::Tensor> targets;
  std::vector<VoxelGrid> grids;
  targets.reserve(static_cast<std::size_t>(num_scenes));
  for (int i = 0; i < num_scenes; ++i) {
    const sim::Scene scene = sim::generate_scene(scene_config, rng);
    const sim::PointCloud pc = lidar_.full_scan(scene, rng);
    VoxelGrid g = VoxelGrid::from_cloud(pc, grid_cfg);
    targets.push_back(g.to_tensor());
    grids.push_back(std::move(g));
  }

  nn::Adam opt(lr);
  opt.attach(ae_.params(), ae_.grads());
  double last_epoch_loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    last_epoch_loss = 0.0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      // Fresh mask each epoch: the model sees many views of each scene.
      const auto visible = masker_.voxel_mask(grids[i], rng);
      const nn::Tensor masked = Masker::apply_mask(grids[i], visible);
      last_epoch_loss += ae_.train_step(masked, targets[i], opt);
    }
    last_epoch_loss /= static_cast<double>(targets.size());
  }
  return last_epoch_loss;
}

SensedScene GenerativeSensingPipeline::sense(const sim::Scene& scene,
                                             Rng& rng) {
  S2A_TRACE_SCOPE_CAT("lidar.sense", "lidar");
  SensedScene out;
  const auto plan = masker_.beam_plan(lidar_.config(), rng);
  {
    S2A_TRACE_SCOPE_CAT("lidar.selective_scan", "lidar");
    out.cloud = lidar_.selective_scan(scene, plan, rng);
  }
  out.sensed = VoxelGrid::from_cloud(out.cloud, ae_.config().grid);
  const nn::Tensor probs = out.sensed.to_tensor();
  const nn::Tensor recon = ae_.reconstruct(probs);
  {
    S2A_TRACE_SCOPE_CAT("lidar.merge", "lidar");
    out.reconstructed = VoxelGrid::from_tensor(recon, ae_.config().grid);
    // Keep sensed voxels authoritative: reconstruction fills gaps only.
    for (int z = 0; z < ae_.config().grid.nz; ++z)
      for (int y = 0; y < ae_.config().grid.ny; ++y)
        for (int x = 0; x < ae_.config().grid.nx; ++x)
          if (out.sensed.occupied(x, y, z))
            out.reconstructed.set(x, y, z, true);
  }
  // Bill the reconstruction at int8 MAC cost when that is the path the
  // forward actually took (quantized snapshot present + backend int8).
  const bool int8_inference =
      ae_.is_quantized() && nn::quant_backend() == nn::QuantBackend::kInt8;
  out.energy = make_energy_report(out.cloud, lidar_.config(),
                                  ae_.param_count(), ae_.macs_per_scan(),
                                  int8_inference);
  S2A_COUNTER_ADD("lidar.active_scans", 1);
  S2A_HISTOGRAM_RECORD("lidar.scan_energy_j", out.energy.sensing_energy_j);
  return out;
}

SensedScene GenerativeSensingPipeline::sense_conventional(
    const sim::Scene& scene, Rng& rng) {
  S2A_TRACE_SCOPE_CAT("lidar.sense_conventional", "lidar");
  SensedScene out;
  {
    S2A_TRACE_SCOPE_CAT("lidar.full_scan", "lidar");
    out.cloud = lidar_.full_scan(scene, rng);
  }
  out.sensed = VoxelGrid::from_cloud(out.cloud, ae_.config().grid);
  out.reconstructed = out.sensed;
  out.energy = make_energy_report(out.cloud, lidar_.config(), 0, 0);
  S2A_COUNTER_ADD("lidar.full_scans", 1);
  return out;
}

}  // namespace s2a::lidar
