// End-to-end generative sensing pipeline (Sec. III): radial-masked active
// scan → voxelize → autoencoder reconstruction → energy report. This is
// the "sense 8–10% of the scene and dream out the rest" loop, packaged as
// one object the examples and benchmarks drive.
#pragma once

#include <memory>

#include "lidar/autoencoder.hpp"
#include "lidar/energy.hpp"
#include "lidar/masking.hpp"
#include "lidar/voxel_grid.hpp"
#include "sim/lidar_sim.hpp"

namespace s2a::lidar {

struct SensedScene {
  sim::PointCloud cloud;       ///< the partial active scan
  VoxelGrid sensed;            ///< voxelized partial observation
  VoxelGrid reconstructed;     ///< autoencoder-completed occupancy
  EnergyReport energy;
};

class GenerativeSensingPipeline {
 public:
  GenerativeSensingPipeline(sim::LidarConfig lidar_config,
                            AutoencoderConfig ae_config,
                            RadialMaskerConfig masker_config, Rng& rng);

  /// Pre-trains the autoencoder on `num_scenes` randomly generated scenes:
  /// full scans are voxelized, radially masked, and reconstructed.
  /// Returns the final-epoch mean BCE loss.
  double pretrain(int num_scenes, int epochs, double lr, Rng& rng,
                  const sim::SceneConfig& scene_config = {});

  /// Active-scan + reconstruct one scene.
  SensedScene sense(const sim::Scene& scene, Rng& rng);

  /// Conventional full-power scan of the same scene, for comparison.
  SensedScene sense_conventional(const sim::Scene& scene, Rng& rng);

  OccupancyAutoencoder& autoencoder() { return ae_; }
  const sim::LidarSimulator& lidar() { return lidar_; }
  const RadialMasker& masker() const { return masker_; }

 private:
  sim::LidarSimulator lidar_;
  RadialMasker masker_;
  OccupancyAutoencoder ae_;
};

}  // namespace s2a::lidar
