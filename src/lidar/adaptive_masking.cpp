#include "lidar/adaptive_masking.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace s2a::lidar {

TaskAwareMasker::TaskAwareMasker(TaskAwareMaskerConfig config)
    : cfg_(config),
      interest_(static_cast<std::size_t>(config.base.angular_segments), 0.0) {
  S2A_CHECK(cfg_.base.angular_segments > 0);
  S2A_CHECK(cfg_.interest_decay >= 0.0 && cfg_.interest_decay < 1.0);
}

int TaskAwareMasker::segment_of(double azimuth) const {
  double a = std::fmod(azimuth, 2.0 * std::numbers::pi);
  if (a < 0.0) a += 2.0 * std::numbers::pi;
  return std::min(cfg_.base.angular_segments - 1,
                  static_cast<int>(a / (2.0 * std::numbers::pi) *
                                   cfg_.base.angular_segments));
}

void TaskAwareMasker::observe_detections(
    const std::vector<Detection>& detections) {
  for (auto& v : interest_) v *= cfg_.interest_decay;
  for (const auto& d : detections) {
    const double az = std::atan2(d.box.center.y, d.box.center.x);
    const int seg = segment_of(az);
    interest_[static_cast<std::size_t>(seg)] = 1.0;
    // Objects straddle segment boundaries; bleed into neighbours.
    const int n = cfg_.base.angular_segments;
    interest_[static_cast<std::size_t>((seg + 1) % n)] =
        std::max(interest_[static_cast<std::size_t>((seg + 1) % n)], 0.5);
    interest_[static_cast<std::size_t>((seg + n - 1) % n)] =
        std::max(interest_[static_cast<std::size_t>((seg + n - 1) % n)], 0.5);
  }
}

double TaskAwareMasker::segment_keep_probability(int segment) const {
  return std::min(1.0, cfg_.base.segment_keep_fraction +
                           cfg_.interest_boost *
                               interest_[static_cast<std::size_t>(segment)]);
}

std::vector<bool> TaskAwareMasker::voxel_mask(const VoxelGrid& grid,
                                              Rng& rng) const {
  const auto& g = grid.config();
  std::vector<bool> kept_segments(
      static_cast<std::size_t>(cfg_.base.angular_segments));
  for (int s = 0; s < cfg_.base.angular_segments; ++s)
    kept_segments[static_cast<std::size_t>(s)] =
        rng.bernoulli(segment_keep_probability(s));

  std::vector<bool> visible(static_cast<std::size_t>(g.nx) * g.ny * g.nz,
                            false);
  for (int iy = 0; iy < g.ny; ++iy)
    for (int ix = 0; ix < g.nx; ++ix) {
      const int seg = segment_of(grid.voxel_azimuth(ix, iy));
      if (!kept_segments[static_cast<std::size_t>(seg)]) continue;
      if (!rng.bernoulli(cfg_.base.in_segment_keep)) continue;
      for (int iz = 0; iz < g.nz; ++iz)
        visible[(static_cast<std::size_t>(iz) * g.ny + iy) * g.nx + ix] = true;
    }
  return visible;
}

std::vector<sim::BeamCommand> TaskAwareMasker::beam_plan(
    const sim::LidarConfig& lidar, Rng& rng) const {
  std::vector<bool> kept_segments(
      static_cast<std::size_t>(cfg_.base.angular_segments));
  for (int s = 0; s < cfg_.base.angular_segments; ++s)
    kept_segments[static_cast<std::size_t>(s)] =
        rng.bernoulli(segment_keep_probability(s));

  std::vector<sim::BeamCommand> plan;
  for (int az = 0; az < lidar.azimuth_steps; ++az) {
    const int seg = std::min(
        cfg_.base.angular_segments - 1,
        az * cfg_.base.angular_segments / lidar.azimuth_steps);
    if (!kept_segments[static_cast<std::size_t>(seg)]) continue;
    const bool interesting = interest_[static_cast<std::size_t>(seg)] > 0.25;
    for (int el = 0; el < lidar.elevation_steps; ++el) {
      if (!rng.bernoulli(cfg_.base.in_segment_keep)) continue;
      sim::BeamCommand cmd;
      cmd.azimuth_idx = az;
      cmd.elevation_idx = el;
      const double far_fraction = interesting
                                      ? cfg_.far_pulse_fraction_interesting
                                      : cfg_.base.far_pulse_fraction;
      cmd.target_range =
          rng.bernoulli(far_fraction)
              ? lidar.max_range
              : lidar.max_range * rng.uniform(cfg_.base.near_reach_lo,
                                              cfg_.base.near_reach_hi);
      plan.push_back(cmd);
    }
  }
  return plan;
}

}  // namespace s2a::lidar
