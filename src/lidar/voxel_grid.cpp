#include "lidar/voxel_grid.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "obs/obs.hpp"

namespace s2a::lidar {

namespace {

// Bins cloud.returns[lo, hi) into `occ` (a [nz][ny][nx] bitmap). Shared
// by the serial path and the per-chunk parallel shards so both orders
// produce the identical voxel set.
void bin_returns(const sim::PointCloud& cloud, const VoxelGridConfig& cfg,
                 double ground_tolerance, std::size_t lo, std::size_t hi,
                 std::vector<bool>& occ) {
  for (std::size_t r_idx = lo; r_idx < hi; ++r_idx) {
    const auto& r = cloud.returns[r_idx];
    if (!r.hit) continue;
    if (r.point.z < cfg.z_min + ground_tolerance) continue;
    const int ix =
        static_cast<int>((r.point.x + cfg.extent) / (2.0 * cfg.extent) * cfg.nx);
    const int iy =
        static_cast<int>((r.point.y + cfg.extent) / (2.0 * cfg.extent) * cfg.ny);
    const int iz = static_cast<int>((r.point.z - cfg.z_min) /
                                    (cfg.z_max - cfg.z_min) * cfg.nz);
    if (ix < 0 || ix >= cfg.nx || iy < 0 || iy >= cfg.ny || iz < 0 ||
        iz >= cfg.nz)
      continue;
    occ[(static_cast<std::size_t>(iz) * cfg.ny + iy) * cfg.nx + ix] = true;
  }
}

// Same binning, but into a packed 64-bit word bitmap (bit i == voxel i).
// The parallel shards use this so the merge is a word-wide OR instead of
// a per-voxel vector<bool> walk per chunk.
void bin_returns_mask(const sim::PointCloud& cloud, const VoxelGridConfig& cfg,
                      double ground_tolerance, std::size_t lo, std::size_t hi,
                      std::uint64_t* mask) {
  for (std::size_t r_idx = lo; r_idx < hi; ++r_idx) {
    const auto& r = cloud.returns[r_idx];
    if (!r.hit) continue;
    if (r.point.z < cfg.z_min + ground_tolerance) continue;
    const int ix =
        static_cast<int>((r.point.x + cfg.extent) / (2.0 * cfg.extent) * cfg.nx);
    const int iy =
        static_cast<int>((r.point.y + cfg.extent) / (2.0 * cfg.extent) * cfg.ny);
    const int iz = static_cast<int>((r.point.z - cfg.z_min) /
                                    (cfg.z_max - cfg.z_min) * cfg.nz);
    if (ix < 0 || ix >= cfg.nx || iy < 0 || iy >= cfg.ny || iz < 0 ||
        iz >= cfg.nz)
      continue;
    const std::size_t idx =
        (static_cast<std::size_t>(iz) * cfg.ny + iy) * cfg.nx + ix;
    mask[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
}

// Below this many returns the pool dispatch + shard-bitmap merge costs
// more than just binning serially. Measured crossover on the dev box:
// binning runs at ~8 ns/return while a dispatch + word-OR merge round
// costs ~10 us, so a 2048-return cloud loses ~50% going parallel and the
// two paths meet at roughly 8k returns (above which the word-mask shards
// are at worst break-even even when the pool is oversubscribed).
constexpr std::size_t kMinParallelReturns = 8192;

}  // namespace

VoxelGrid::VoxelGrid(VoxelGridConfig config)
    : cfg_(config),
      occ_(static_cast<std::size_t>(config.nx) * config.ny * config.nz, false) {
  S2A_CHECK(config.nx > 0 && config.ny > 0 && config.nz > 0);
  S2A_CHECK(config.extent > 0.0 && config.z_max > config.z_min);
}

std::size_t VoxelGrid::index(int ix, int iy, int iz) const {
  S2A_DCHECK(ix >= 0 && ix < cfg_.nx);
  S2A_DCHECK(iy >= 0 && iy < cfg_.ny);
  S2A_DCHECK(iz >= 0 && iz < cfg_.nz);
  return (static_cast<std::size_t>(iz) * cfg_.ny + iy) * cfg_.nx + ix;
}

VoxelGrid VoxelGrid::from_cloud(const sim::PointCloud& cloud,
                                const VoxelGridConfig& cfg,
                                double ground_tolerance) {
  S2A_TRACE_SCOPE_CAT("lidar.voxelize", "lidar");
  VoxelGrid grid(cfg);
  const std::size_t n = cloud.returns.size();
  util::ThreadPool& pool = util::global_pool();
  // effective_parallelism() (not pool.size()) so a pool oversubscribed
  // onto fewer cores — e.g. S2A_THREADS=4 on a 1-core box — falls back
  // to the serial path it can't beat.
  if (util::effective_parallelism() <= 1 || n < kMinParallelReturns) {
    bin_returns(cloud, cfg, ground_tolerance, 0, n, grid.occ_);
    return grid;
  }

  // Shard the cloud into one chunk per pool slot; each chunk bins into
  // its own local word bitmap, merged by bitwise OR afterwards. OR is
  // commutative and idempotent, so occupancy is bit-exact at every
  // thread count (merge order kept chunk-indexed anyway, for symmetry
  // with the float reductions elsewhere).
  const std::size_t grain =
      (n + static_cast<std::size_t>(pool.size()) - 1) /
      static_cast<std::size_t>(pool.size());
  const std::size_t chunks = util::ThreadPool::num_chunks(0, n, grain);
  const std::size_t words = (grid.occ_.size() + 63) / 64;
  std::vector<std::uint64_t> locals(chunks * words, 0);
  pool.parallel_for_chunks(
      0, n, grain, [&](std::size_t lo, std::size_t hi, std::size_t c) {
        S2A_TRACE_SCOPE_CAT("lidar.voxelize_shard", "lidar");
        bin_returns_mask(cloud, cfg, ground_tolerance, lo, hi,
                         locals.data() + c * words);
      });
  for (std::size_t c = 1; c < chunks; ++c)
    for (std::size_t i = 0; i < words; ++i) locals[i] |= locals[c * words + i];
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t word = locals[i];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      grid.occ_[i * 64 + static_cast<std::size_t>(bit)] = true;
      word &= word - 1;
    }
  }
  return grid;
}

bool VoxelGrid::occupied(int ix, int iy, int iz) const {
  return occ_[index(ix, iy, iz)];
}

void VoxelGrid::set(int ix, int iy, int iz, bool value) {
  occ_[index(ix, iy, iz)] = value;
}

std::size_t VoxelGrid::occupied_count() const {
  std::size_t n = 0;
  for (bool b : occ_)
    if (b) ++n;
  return n;
}

std::size_t VoxelGrid::voxel_count() const { return occ_.size(); }

Vec3 VoxelGrid::voxel_center(int ix, int iy, int iz) const {
  return {-cfg_.extent + (ix + 0.5) * cfg_.cell_x(),
          -cfg_.extent + (iy + 0.5) * cfg_.cell_y(),
          cfg_.z_min + (iz + 0.5) * cfg_.cell_z()};
}

double VoxelGrid::voxel_range(int ix, int iy) const {
  return voxel_center(ix, iy, 0).range_xy();
}

double VoxelGrid::voxel_azimuth(int ix, int iy) const {
  const Vec3 c = voxel_center(ix, iy, 0);
  double a = std::atan2(c.y, c.x);
  if (a < 0.0) a += 2.0 * std::numbers::pi;
  return a;
}

nn::Tensor VoxelGrid::to_tensor() const {
  nn::Tensor t({1, cfg_.nz, cfg_.ny, cfg_.nx});
  for (std::size_t i = 0; i < occ_.size(); ++i) t[i] = occ_[i] ? 1.0 : 0.0;
  return t;
}

VoxelGrid VoxelGrid::from_tensor(const nn::Tensor& t,
                                 const VoxelGridConfig& cfg) {
  S2A_CHECK(t.shape() ==
            (std::vector<int>{1, cfg.nz, cfg.ny, cfg.nx}));
  VoxelGrid grid(cfg);
  for (std::size_t i = 0; i < grid.occ_.size(); ++i) grid.occ_[i] = t[i] > 0.5;
  return grid;
}

double VoxelGrid::iou(const VoxelGrid& other) const {
  S2A_CHECK(occ_.size() == other.occ_.size());
  std::size_t inter = 0, uni = 0;
  for (std::size_t i = 0; i < occ_.size(); ++i) {
    if (occ_[i] && other.occ_[i]) ++inter;
    if (occ_[i] || other.occ_[i]) ++uni;
  }
  return uni > 0 ? static_cast<double>(inter) / uni : 1.0;
}

}  // namespace s2a::lidar
