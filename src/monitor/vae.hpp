// Variational autoencoder over task-network feature embeddings
// (STARNet's distribution model, Fig. 6): learns the typical distribution
// of clean sensor features so that likelihood regret can flag inputs the
// encoder no longer explains.
#pragma once

#include <vector>

#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace s2a::monitor {

struct VaeConfig {
  int input_dim = 16;
  int hidden = 32;
  int latent_dim = 4;
  double kl_weight = 1.0;
};

/// Gaussian encoder q(z|x) = N(µ(x), diag(exp(logvar(x)))) and Gaussian
/// decoder p(x|z) = N(x̂(z), I).
class Vae {
 public:
  Vae(VaeConfig config, Rng& rng);

  struct Posterior {
    std::vector<double> mu, logvar;
  };
  Posterior encode(const std::vector<double>& x);
  std::vector<double> decode(const std::vector<double>& z);

  /// Deterministic ELBO with z = µ (MAP point): log p(x|µ) − KL(q‖N(0,I))
  /// up to the Gaussian constant. Deterministic so SPSA optimization and
  /// scoring are reproducible.
  double elbo(const std::vector<double>& x, const Posterior& q);
  /// ELBO under the trained encoder's own posterior.
  double elbo(const std::vector<double>& x);

  /// One reparameterized training step on a batch; returns the batch loss
  /// (negative ELBO). Gradients flow through the sampling noise drawn from
  /// `rng`.
  double train_step(const std::vector<std::vector<double>>& batch,
                    nn::Optimizer& opt, Rng& rng);

  /// Convenience: trains for `epochs` over shuffled minibatches.
  void fit(const std::vector<std::vector<double>>& data, int epochs,
           int batch_size, double lr, Rng& rng);

  std::vector<nn::Tensor*> params();
  std::vector<nn::Tensor*> grads();
  const VaeConfig& config() const { return cfg_; }

 private:
  friend class LoraAdaptedVae;
  VaeConfig cfg_;
  nn::Sequential encoder_trunk_;  // x -> hidden
  nn::Dense mu_head_, logvar_head_;
  nn::Sequential decoder_;  // z -> x̂
};

/// Analytic KL(N(µ, e^{logvar}) ‖ N(0, I)).
double gaussian_kl(const std::vector<double>& mu,
                   const std::vector<double>& logvar);

}  // namespace s2a::monitor
