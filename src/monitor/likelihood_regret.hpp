// Likelihood Regret (Xiao et al. [35], used by STARNet): how much better
// the VAE could explain an input if its posterior were optimized for that
// single input. In-distribution inputs are already well-fit by the trained
// encoder (small regret); shifted/corrupted inputs admit a much better
// per-sample posterior (large regret). STARNet computes the inner
// optimization gradient-free with SPSA.
#pragma once

#include "monitor/spsa.hpp"
#include "monitor/vae.hpp"

namespace s2a::monitor {

enum class RegretOptimizer { kSpsa, kFiniteDifference };

struct RegretConfig {
  RegretOptimizer optimizer = RegretOptimizer::kSpsa;
  SpsaConfig spsa;
  int fd_iterations = 40;    ///< finite-difference baseline (ablation)
  double fd_step = 1e-3;
  double fd_lr = 0.05;
};

struct RegretResult {
  double regret = 0.0;            ///< ELBO_optimized − ELBO_encoder (≥ ~0)
  double elbo_encoder = 0.0;
  double elbo_optimized = 0.0;
  int function_evaluations = 0;
};

/// Computes likelihood regret of `x` under `vae`, optimizing the
/// per-sample posterior (µ, logvar) from the encoder's output.
RegretResult likelihood_regret(Vae& vae, const std::vector<double>& x,
                               const RegretConfig& config, Rng& rng);

}  // namespace s2a::monitor
