#include "monitor/starnet.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace s2a::monitor {

StarNet::StarNet(StarNetConfig config, Rng& rng)
    : cfg_(config), vae_(config.vae, rng) {}

std::vector<double> StarNet::standardize(const std::vector<double>& x) const {
  S2A_CHECK(x.size() == mean_.size());
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = (x[i] - mean_[i]) / stddev_[i];
  return out;
}

void StarNet::fit(const std::vector<std::vector<double>>& clean, Rng& rng) {
  S2A_TRACE_SCOPE_CAT("monitor.starnet_fit", "monitor");
  S2A_CHECK_MSG(clean.size() >= 8, "need enough clean samples to calibrate");
  const std::size_t dim = clean[0].size();
  S2A_CHECK(static_cast<int>(dim) == cfg_.vae.input_dim);

  // Per-dimension standardization statistics.
  mean_.assign(dim, 0.0);
  stddev_.assign(dim, 0.0);
  for (const auto& x : clean)
    for (std::size_t i = 0; i < dim; ++i) mean_[i] += x[i];
  for (auto& m : mean_) m /= static_cast<double>(clean.size());
  for (const auto& x : clean)
    for (std::size_t i = 0; i < dim; ++i)
      stddev_[i] += (x[i] - mean_[i]) * (x[i] - mean_[i]);
  for (auto& s : stddev_)
    s = std::max(1e-6, std::sqrt(s / static_cast<double>(clean.size())));

  std::vector<std::vector<double>> standardized;
  standardized.reserve(clean.size());
  for (const auto& x : clean) standardized.push_back(standardize(x));

  {
    S2A_TRACE_SCOPE_CAT("monitor.vae_fit", "monitor");
    vae_.fit(standardized, cfg_.vae_epochs, cfg_.vae_batch, cfg_.vae_lr, rng);
  }
  fitted_ = true;

  // Calibrate the trust threshold on clean scores.
  S2A_TRACE_SCOPE_CAT("monitor.calibrate", "monitor");
  std::vector<double> scores;
  scores.reserve(clean.size());
  for (const auto& x : standardized) {
    const RegretResult r = likelihood_regret(vae_, x, cfg_.regret, rng);
    scores.push_back(r.regret);
  }
  threshold_ = percentile(std::move(scores), cfg_.threshold_percentile);
}

double StarNet::score(const std::vector<double>& embedding, Rng& rng) {
  S2A_TRACE_SCOPE_CAT("monitor.starnet_score", "monitor");
  S2A_CHECK_MSG(fitted_, "fit() before score()");
  const RegretResult r =
      likelihood_regret(vae_, standardize(embedding), cfg_.regret, rng);
  return r.regret;
}

double StarNetUncertainty::score(const core::Observation& obs) {
  if (!starnet_.fitted()) return 0.0;
  const double threshold = std::max(1e-12, starnet_.threshold());
  return starnet_.score(obs.data, rng_) / threshold;
}

bool StarNet::trusted(const std::vector<double>& embedding, Rng& rng) {
  const bool ok = score(embedding, rng) <= threshold_;
  // One macro per branch: each call site caches a single instrument.
  if (ok) {
    S2A_COUNTER_ADD("monitor.trusted", 1);
  } else {
    S2A_COUNTER_ADD("monitor.untrusted", 1);
  }
  return ok;
}

}  // namespace s2a::monitor
