// Simultaneous Perturbation Stochastic Approximation (Sec. V):
// gradient-free minimization that estimates the full gradient from TWO
// function evaluations per iteration regardless of dimension — the
// property that makes per-sample likelihood-regret computation affordable
// on low-power edge devices.
#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace s2a::monitor {

struct SpsaConfig {
  int iterations = 60;
  double a = 0.1;       ///< step-size numerator
  double c = 0.05;      ///< perturbation magnitude numerator
  double alpha = 0.602; ///< step-size decay exponent (standard Spall values)
  double gamma = 0.101; ///< perturbation decay exponent
  double stability = 10.0;  ///< A: step-size stabilizer
};

struct SpsaResult {
  std::vector<double> best_theta;
  double best_value = 0.0;
  int function_evaluations = 0;
};

/// Minimizes `objective` starting from `theta0`. Keeps the best iterate
/// seen (SPSA iterates are noisy).
SpsaResult spsa_minimize(const std::function<double(const std::vector<double>&)>& objective,
                         std::vector<double> theta0, const SpsaConfig& config,
                         Rng& rng);

}  // namespace s2a::monitor
