#include "monitor/spsa.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::monitor {

SpsaResult spsa_minimize(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> theta0, const SpsaConfig& cfg, Rng& rng) {
  S2A_CHECK(!theta0.empty());
  S2A_CHECK(cfg.iterations > 0);

  std::vector<double> theta = std::move(theta0);
  SpsaResult res;
  res.best_theta = theta;
  res.best_value = objective(theta);
  res.function_evaluations = 1;

  const std::size_t dim = theta.size();
  std::vector<double> delta(dim), plus(dim), minus(dim);
  for (int k = 0; k < cfg.iterations; ++k) {
    const double ak =
        cfg.a / std::pow(k + 1 + cfg.stability, cfg.alpha);
    const double ck = cfg.c / std::pow(k + 1, cfg.gamma);

    for (std::size_t i = 0; i < dim; ++i) {
      delta[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;  // Rademacher
      plus[i] = theta[i] + ck * delta[i];
      minus[i] = theta[i] - ck * delta[i];
    }
    const double fp = objective(plus);
    const double fm = objective(minus);
    res.function_evaluations += 2;

    const double diff = (fp - fm) / (2.0 * ck);
    for (std::size_t i = 0; i < dim; ++i)
      theta[i] -= ak * diff / delta[i];

    const double f = objective(theta);
    res.function_evaluations += 1;
    if (f < res.best_value) {
      res.best_value = f;
      res.best_theta = theta;
    }
  }
  return res;
}

}  // namespace s2a::monitor
