#include "monitor/likelihood_regret.hpp"

#include "util/check.hpp"

namespace s2a::monitor {

namespace {
Vae::Posterior unpack(const std::vector<double>& theta, int k) {
  Vae::Posterior q;
  q.mu.assign(theta.begin(), theta.begin() + k);
  q.logvar.assign(theta.begin() + k, theta.end());
  return q;
}
}  // namespace

RegretResult likelihood_regret(Vae& vae, const std::vector<double>& x,
                               const RegretConfig& cfg, Rng& rng) {
  const int k = vae.config().latent_dim;
  const Vae::Posterior q0 = vae.encode(x);

  RegretResult res;
  res.elbo_encoder = vae.elbo(x, q0);

  std::vector<double> theta(static_cast<std::size_t>(2 * k));
  for (int i = 0; i < k; ++i) {
    theta[static_cast<std::size_t>(i)] = q0.mu[static_cast<std::size_t>(i)];
    theta[static_cast<std::size_t>(k + i)] = q0.logvar[static_cast<std::size_t>(i)];
  }

  // Minimize negative ELBO over the per-sample posterior parameters.
  auto objective = [&](const std::vector<double>& t) {
    return -vae.elbo(x, unpack(t, k));
  };

  if (cfg.optimizer == RegretOptimizer::kSpsa) {
    const SpsaResult opt = spsa_minimize(objective, theta, cfg.spsa, rng);
    res.elbo_optimized = -opt.best_value;
    res.function_evaluations = opt.function_evaluations;
  } else {
    // Coordinate-wise central differences: 2·dim evaluations per step —
    // the cost SPSA avoids (ablation bench bench_ablation_spsa).
    std::vector<double> t = theta;
    double best = objective(t);
    std::vector<double> best_t = t;
    int evals = 1;
    for (int it = 0; it < cfg.fd_iterations; ++it) {
      std::vector<double> grad(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) {
        const double orig = t[i];
        t[i] = orig + cfg.fd_step;
        const double fp = objective(t);
        t[i] = orig - cfg.fd_step;
        const double fm = objective(t);
        t[i] = orig;
        evals += 2;
        grad[i] = (fp - fm) / (2.0 * cfg.fd_step);
      }
      for (std::size_t i = 0; i < t.size(); ++i) t[i] -= cfg.fd_lr * grad[i];
      const double f = objective(t);
      ++evals;
      if (f < best) {
        best = f;
        best_t = t;
      }
    }
    res.elbo_optimized = -best;
    res.function_evaluations = evals;
  }

  // Regret is non-negative by construction up to optimizer noise; clamp
  // tiny negatives so downstream thresholds behave.
  res.regret = std::max(0.0, res.elbo_optimized - res.elbo_encoder);
  return res;
}

}  // namespace s2a::monitor
