#include "monitor/fusion.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::monitor {

std::vector<lidar::Detection> simulate_camera_detections(
    const sim::Scene& scene, int severity, const CameraDetectorConfig& cfg,
    Rng& rng) {
  S2A_CHECK(severity >= 0 && severity <= 5);
  std::vector<lidar::Detection> out;
  const double miss = std::min(0.95, cfg.miss_prob + severity * cfg.miss_per_severity);
  for (const auto& obj : scene.objects) {
    if (rng.bernoulli(miss)) continue;
    lidar::Detection d;
    d.cls = obj.cls;
    d.box = obj.box;
    d.box.center.x += rng.normal(0.0, cfg.center_noise);
    d.box.center.y += rng.normal(0.0, cfg.center_noise);
    d.score = rng.uniform(0.5, 0.9);
    out.push_back(d);
  }
  // False positives scattered over the scene.
  const int fps = rng.bernoulli(cfg.false_positives_mean) ? 1 : 0;
  for (int i = 0; i < fps; ++i) {
    lidar::Detection d;
    d.cls = static_cast<sim::ObjectClass>(rng.uniform_int(0, 2));
    const Vec3 size = sim::class_archetype_size(d.cls);
    d.box.center = {rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0),
                    size.z / 2.0};
    d.box.size = size;
    d.score = rng.uniform(0.3, 0.6);
    out.push_back(d);
  }
  return out;
}

double regret_to_reliability(double score, double threshold) {
  S2A_CHECK(threshold > 0.0);
  // A non-finite regret means the monitor itself broke down (NaN
  // embedding, overflowed ELBO) — the stream gets zero weight, it must
  // not propagate NaN into detection-score scaling. Negative and
  // sub-threshold finite scores clamp to full reliability.
  if (!std::isfinite(score)) return 0.0;
  if (score <= threshold) return 1.0;
  return threshold / score;
}

std::vector<lidar::Detection> reliability_weighted_fuse(
    const std::vector<lidar::Detection>& lidar_dets,
    const std::vector<lidar::Detection>& camera_dets,
    double lidar_reliability, double dedup_iou) {
  S2A_CHECK(lidar_reliability >= 0.0 && lidar_reliability <= 1.0);
  std::vector<lidar::Detection> weighted = lidar_dets;
  for (auto& d : weighted) d.score *= lidar_reliability;
  return trust_gated_fuse(weighted, camera_dets, /*lidar_trusted=*/true,
                          dedup_iou);
}

std::vector<lidar::Detection> trust_gated_fuse(
    const std::vector<lidar::Detection>& lidar_dets,
    const std::vector<lidar::Detection>& camera_dets, bool lidar_trusted,
    double dedup_iou) {
  S2A_TRACE_SCOPE_CAT("monitor.fuse", "monitor");
  if (!lidar_trusted) {
    S2A_COUNTER_ADD("monitor.lidar_gated_out", 1);
    return camera_dets;
  }

  std::vector<lidar::Detection> merged = lidar_dets;
  for (const auto& cam : camera_dets) {
    bool duplicate = false;
    for (auto& ld : merged) {
      if (ld.cls != cam.cls) continue;
      if (iou_bev(ld.box, cam.box) >= dedup_iou) {
        duplicate = true;
        if (cam.score > ld.score) ld = cam;
        break;
      }
    }
    if (!duplicate) merged.push_back(cam);
  }
  std::sort(merged.begin(), merged.end(),
            [](const lidar::Detection& a, const lidar::Detection& b) {
              return a.score > b.score;
            });
  return merged;
}

}  // namespace s2a::monitor
