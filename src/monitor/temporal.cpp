#include "monitor/temporal.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::monitor {

TemporalConsistencyMonitor::TemporalConsistencyMonitor(
    TemporalMonitorConfig config)
    : cfg_(config) {
  S2A_CHECK(cfg_.ema_alpha > 0.0 && cfg_.ema_alpha <= 1.0);
  S2A_CHECK(cfg_.z_threshold > 0.0);
}

void TemporalConsistencyMonitor::calibrate(
    const std::vector<std::vector<double>>& clean) {
  S2A_CHECK_MSG(clean.size() >= 4, "need several clean samples");
  const std::size_t dim = clean[0].size();
  baseline_mean_.assign(dim, 0.0);
  baseline_std_.assign(dim, 0.0);
  for (const auto& x : clean) {
    S2A_CHECK(x.size() == dim);
    for (std::size_t i = 0; i < dim; ++i) baseline_mean_[i] += x[i];
  }
  for (auto& m : baseline_mean_) m /= static_cast<double>(clean.size());
  for (const auto& x : clean)
    for (std::size_t i = 0; i < dim; ++i)
      baseline_std_[i] += (x[i] - baseline_mean_[i]) * (x[i] - baseline_mean_[i]);
  for (auto& s : baseline_std_)
    s = std::max(1e-9, std::sqrt(s / static_cast<double>(clean.size())));
  calibrated_ = true;
  reset();
}

void TemporalConsistencyMonitor::reset() {
  ema_.clear();
  has_ema_ = false;
  drift_ = 0.0;
}

double TemporalConsistencyMonitor::update(const std::vector<double>& x) {
  S2A_CHECK_MSG(calibrated_, "calibrate() before update()");
  S2A_CHECK(x.size() == baseline_mean_.size());

  if (!has_ema_) {
    ema_ = x;
    has_ema_ = true;
  } else {
    for (std::size_t i = 0; i < x.size(); ++i)
      ema_[i] = (1.0 - cfg_.ema_alpha) * ema_[i] + cfg_.ema_alpha * x[i];
  }

  // The EMA of n≈2/alpha samples has standard error σ·sqrt(alpha/2); score
  // the deviation in those units so a stable stream hovers near ~1.
  const double se_factor = std::sqrt(cfg_.ema_alpha / 2.0);
  double z = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    z += std::abs(ema_[i] - baseline_mean_[i]) / (baseline_std_[i] * se_factor);
  drift_ = z / static_cast<double>(x.size());
  return drift_;
}

}  // namespace s2a::monitor
