// Trust-gated LiDAR + camera fusion (the Fig. 7 experiment): when STARNet
// flags the LiDAR stream as untrustworthy, the loop falls back to the
// camera channel instead of acting on corrupted geometry.
//
// The camera detector is simulated from scene ground truth with a
// configurable miss rate, localization noise and false positives —
// cameras lack LiDAR's depth precision but degrade far more gracefully in
// snow, which is exactly the asymmetry the experiment exercises.
#pragma once

#include <vector>

#include "lidar/detector.hpp"
#include "sim/scene.hpp"
#include "util/rng.hpp"

namespace s2a::monitor {

struct CameraDetectorConfig {
  double miss_prob = 0.25;
  double center_noise = 0.8;      ///< 1σ localization error (m)
  double false_positives_mean = 0.7;  ///< Poisson-ish FP count per scene
  /// Additional miss probability per snow severity level (cameras degrade
  /// too, just less than LiDAR).
  double miss_per_severity = 0.03;
};

/// Simulated monocular detections of `scene` under weather `severity`.
std::vector<lidar::Detection> simulate_camera_detections(
    const sim::Scene& scene, int severity, const CameraDetectorConfig& config,
    Rng& rng);

/// Gate + merge: when the LiDAR stream is trusted the two sets are merged
/// with IoU-based de-duplication (keep the higher score); when it is not,
/// only camera detections pass.
std::vector<lidar::Detection> trust_gated_fuse(
    const std::vector<lidar::Detection>& lidar_dets,
    const std::vector<lidar::Detection>& camera_dets, bool lidar_trusted,
    double dedup_iou = 0.5);

/// Continuous variant (Sec. V future work: "adaptive fusion to adjust
/// sensor weights based on reliability"): instead of a binary gate, LiDAR
/// detection scores are scaled by `lidar_reliability` in [0, 1] before the
/// same de-duplicating merge, so a degrading stream fades out of the
/// ranking gradually rather than being cut off at a threshold.
std::vector<lidar::Detection> reliability_weighted_fuse(
    const std::vector<lidar::Detection>& lidar_dets,
    const std::vector<lidar::Detection>& camera_dets,
    double lidar_reliability, double dedup_iou = 0.5);

/// Maps a STARNet regret score to a reliability weight via a soft-knee:
/// 1 at/below the calibrated threshold (negative scores included),
/// decaying as score/threshold grows (reliability = threshold /
/// max(threshold, score)). Non-finite scores — a broken monitor — map to
/// reliability 0, never propagating NaN into detection-score scaling.
double regret_to_reliability(double score, double threshold);

}  // namespace s2a::monitor
