// STARNet (Sec. V, Fig. 6): sensor-trustworthiness monitoring for
// sensing-to-action loops. A VAE models the distribution of clean task-
// network feature embeddings; at inference, likelihood regret (computed
// gradient-free with SPSA) scores how far the current embedding has
// drifted, and a threshold calibrated on clean data gates whether the
// stream is trusted.
#pragma once

#include <cstdint>
#include <vector>

#include "core/offload.hpp"
#include "monitor/likelihood_regret.hpp"
#include "monitor/vae.hpp"

namespace s2a::monitor {

struct StarNetConfig {
  VaeConfig vae;
  RegretConfig regret;
  /// Trust threshold = this percentile of clean-data regret scores.
  double threshold_percentile = 95.0;
  int vae_epochs = 80;
  int vae_batch = 16;
  double vae_lr = 5e-3;
};

class StarNet {
 public:
  StarNet(StarNetConfig config, Rng& rng);

  /// Trains the VAE on clean embeddings and calibrates the trust
  /// threshold. Embeddings are standardized per dimension internally.
  void fit(const std::vector<std::vector<double>>& clean_embeddings,
           Rng& rng);

  /// Likelihood-regret anomaly score (higher = less trustworthy).
  double score(const std::vector<double>& embedding, Rng& rng);
  /// True when the embedding's score falls below the calibrated threshold.
  bool trusted(const std::vector<double>& embedding, Rng& rng);

  double threshold() const { return threshold_; }
  bool fitted() const { return fitted_; }
  Vae& vae() { return vae_; }

 private:
  std::vector<double> standardize(const std::vector<double>& x) const;

  StarNetConfig cfg_;
  Vae vae_;
  std::vector<double> mean_, stddev_;
  double threshold_ = 0.0;
  bool fitted_ = false;
};

/// Adapts a fitted StarNet into the core::UncertaintySource interface
/// consumed by core::OffloadExecutor: the returned score is the
/// likelihood regret normalized by the calibrated trust threshold, so
/// the executor's default regret_gate of 1.0 means "offload exactly the
/// embeddings STARNet would distrust". Owns its own seeded Rng for the
/// SPSA draws (member-local → thread-count deterministic). Before fit()
/// the adapter reports 0 (confident — keep local).
class StarNetUncertainty : public core::UncertaintySource {
 public:
  StarNetUncertainty(StarNet& starnet, std::uint64_t seed)
      : starnet_(starnet), rng_(seed) {}

  double score(const core::Observation& obs) override;

 private:
  StarNet& starnet_;
  Rng rng_;
};

}  // namespace s2a::monitor
