// STARNet (Sec. V, Fig. 6): sensor-trustworthiness monitoring for
// sensing-to-action loops. A VAE models the distribution of clean task-
// network feature embeddings; at inference, likelihood regret (computed
// gradient-free with SPSA) scores how far the current embedding has
// drifted, and a threshold calibrated on clean data gates whether the
// stream is trusted.
#pragma once

#include <vector>

#include "monitor/likelihood_regret.hpp"
#include "monitor/vae.hpp"

namespace s2a::monitor {

struct StarNetConfig {
  VaeConfig vae;
  RegretConfig regret;
  /// Trust threshold = this percentile of clean-data regret scores.
  double threshold_percentile = 95.0;
  int vae_epochs = 80;
  int vae_batch = 16;
  double vae_lr = 5e-3;
};

class StarNet {
 public:
  StarNet(StarNetConfig config, Rng& rng);

  /// Trains the VAE on clean embeddings and calibrates the trust
  /// threshold. Embeddings are standardized per dimension internally.
  void fit(const std::vector<std::vector<double>>& clean_embeddings,
           Rng& rng);

  /// Likelihood-regret anomaly score (higher = less trustworthy).
  double score(const std::vector<double>& embedding, Rng& rng);
  /// True when the embedding's score falls below the calibrated threshold.
  bool trusted(const std::vector<double>& embedding, Rng& rng);

  double threshold() const { return threshold_; }
  bool fitted() const { return fitted_; }
  Vae& vae() { return vae_; }

 private:
  std::vector<double> standardize(const std::vector<double>& x) const;

  StarNetConfig cfg_;
  Vae vae_;
  std::vector<double> mean_, stddev_;
  double threshold_ = 0.0;
  bool fitted_ = false;
};

}  // namespace s2a::monitor
