#include "monitor/vae.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/loss.hpp"
#include "util/check.hpp"

namespace s2a::monitor {

double gaussian_kl(const std::vector<double>& mu,
                   const std::vector<double>& logvar) {
  S2A_CHECK(mu.size() == logvar.size());
  double kl = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i)
    kl += 0.5 * (mu[i] * mu[i] + std::exp(logvar[i]) - logvar[i] - 1.0);
  return kl;
}

Vae::Vae(VaeConfig config, Rng& rng)
    : cfg_(config),
      mu_head_(config.hidden, config.latent_dim, rng),
      logvar_head_(config.hidden, config.latent_dim, rng) {
  encoder_trunk_.emplace<nn::Dense>(cfg_.input_dim, cfg_.hidden, rng);
  encoder_trunk_.emplace<nn::Tanh>();
  decoder_.emplace<nn::Dense>(cfg_.latent_dim, cfg_.hidden, rng);
  decoder_.emplace<nn::Tanh>();
  decoder_.emplace<nn::Dense>(cfg_.hidden, cfg_.input_dim, rng);
  // Start logvar near 0 regardless of trunk output.
  logvar_head_.weight().fill(0.0);
}

Vae::Posterior Vae::encode(const std::vector<double>& x) {
  S2A_CHECK(static_cast<int>(x.size()) == cfg_.input_dim);
  nn::Tensor xt({1, cfg_.input_dim}, std::vector<double>(x.begin(), x.end()));
  const nn::Tensor h = encoder_trunk_.forward(xt);
  const nn::Tensor mu = mu_head_.forward(h);
  const nn::Tensor lv = logvar_head_.forward(h);
  Posterior q;
  q.mu.assign(mu.data(), mu.data() + mu.numel());
  q.logvar.assign(lv.data(), lv.data() + lv.numel());
  return q;
}

std::vector<double> Vae::decode(const std::vector<double>& z) {
  S2A_CHECK(static_cast<int>(z.size()) == cfg_.latent_dim);
  nn::Tensor zt({1, cfg_.latent_dim}, std::vector<double>(z.begin(), z.end()));
  const nn::Tensor xt = decoder_.forward(zt);
  return std::vector<double>(xt.data(), xt.data() + xt.numel());
}

double Vae::elbo(const std::vector<double>& x, const Posterior& q) {
  const std::vector<double> x_hat = decode(q.mu);
  double log_lik = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - x_hat[i];
    log_lik += -0.5 * d * d;  // unit-variance Gaussian, constant dropped
  }
  return log_lik - cfg_.kl_weight * gaussian_kl(q.mu, q.logvar);
}

double Vae::elbo(const std::vector<double>& x) { return elbo(x, encode(x)); }

double Vae::train_step(const std::vector<std::vector<double>>& batch,
                       nn::Optimizer& opt, Rng& rng) {
  S2A_CHECK(!batch.empty());
  const int n = static_cast<int>(batch.size());
  const int d = cfg_.input_dim, k = cfg_.latent_dim;

  nn::Tensor x({n, d});
  for (int i = 0; i < n; ++i) {
    S2A_CHECK(static_cast<int>(batch[static_cast<std::size_t>(i)].size()) == d);
    for (int j = 0; j < d; ++j)
      x.at(i, j) = batch[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  }

  opt.zero_grad();
  const nn::Tensor h = encoder_trunk_.forward(x);
  const nn::Tensor mu = mu_head_.forward(h);
  const nn::Tensor lv = logvar_head_.forward(h);

  // Reparameterized sample z = µ + e^{lv/2}·ε.
  nn::Tensor eps({n, k});
  for (std::size_t i = 0; i < eps.numel(); ++i) eps[i] = rng.normal();
  nn::Tensor z = mu;
  for (std::size_t i = 0; i < z.numel(); ++i)
    z[i] += std::exp(0.5 * lv[i]) * eps[i];

  const nn::Tensor x_hat = decoder_.forward(z);

  // Loss = Σ 0.5‖x − x̂‖² / n + w·KL / n.
  double loss = 0.0;
  nn::Tensor dxhat = x_hat;
  for (std::size_t i = 0; i < dxhat.numel(); ++i) {
    const double diff = x_hat[i] - x[i];
    loss += 0.5 * diff * diff;
    dxhat[i] = diff / n;
  }
  nn::Tensor dz = decoder_.backward(dxhat);

  // KL and its gradients on µ, logvar.
  nn::Tensor dmu = dz;  // dz flows into µ directly (z = µ + …)
  nn::Tensor dlv({n, k});
  for (std::size_t i = 0; i < dlv.numel(); ++i) {
    loss += cfg_.kl_weight * 0.5 *
            (mu[i] * mu[i] + std::exp(lv[i]) - lv[i] - 1.0);
    dmu[i] += cfg_.kl_weight * mu[i] / n;
    // z depends on lv via e^{lv/2}·ε.
    dlv[i] = dz[i] * 0.5 * std::exp(0.5 * lv[i]) * eps[i] +
             cfg_.kl_weight * 0.5 * (std::exp(lv[i]) - 1.0) / n;
  }

  nn::Tensor dh = mu_head_.backward(dmu);
  dh.add_scaled(logvar_head_.backward(dlv), 1.0);
  encoder_trunk_.backward(dh);
  opt.step();
  return loss / n;
}

void Vae::fit(const std::vector<std::vector<double>>& data, int epochs,
              int batch_size, double lr, Rng& rng) {
  S2A_CHECK(!data.empty() && epochs > 0 && batch_size > 0);
  nn::Adam opt(lr);
  opt.attach(params(), grads());
  std::vector<int> order(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) order[i] = static_cast<int>(i);
  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < data.size();
         start += static_cast<std::size_t>(batch_size)) {
      std::vector<std::vector<double>> batch;
      for (std::size_t i = start;
           i < std::min(data.size(), start + static_cast<std::size_t>(batch_size));
           ++i)
        batch.push_back(data[static_cast<std::size_t>(order[i])]);
      train_step(batch, opt, rng);
    }
  }
}

std::vector<nn::Tensor*> Vae::params() {
  auto p = encoder_trunk_.params();
  for (auto* q : mu_head_.params()) p.push_back(q);
  for (auto* q : logvar_head_.params()) p.push_back(q);
  for (auto* q : decoder_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> Vae::grads() {
  auto g = encoder_trunk_.grads();
  for (auto* q : mu_head_.grads()) g.push_back(q);
  for (auto* q : logvar_head_.grads()) g.push_back(q);
  for (auto* q : decoder_.grads()) g.push_back(q);
  return g;
}

}  // namespace s2a::monitor
