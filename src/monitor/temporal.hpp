// Temporal consistency monitoring — the Sec. V future-enhancement
// ("temporal consistency checks for detecting gradual sensor
// degradation"). Per-sample likelihood regret catches abrupt corruption;
// slow drift (lens fouling, thermal bias, aging lasers) stays inside the
// per-sample envelope while the *running mean* of the feature stream
// walks away from the calibration distribution. This monitor tracks an
// EMA of embeddings and scores its Mahalanobis-style distance from the
// clean baseline, in units of the baseline's standard error.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace s2a::monitor {

struct TemporalMonitorConfig {
  double ema_alpha = 0.1;   ///< smoothing of the running embedding mean
  double z_threshold = 4.0; ///< drift alarm threshold (per-dim z, averaged)
};

class TemporalConsistencyMonitor {
 public:
  explicit TemporalConsistencyMonitor(TemporalMonitorConfig config = {});

  /// Learns the clean per-dimension mean/std baseline.
  void calibrate(const std::vector<std::vector<double>>& clean_embeddings);

  /// Folds one embedding into the running mean and returns the drift
  /// score: mean over dimensions of |EMA − baseline| / baseline σ.
  double update(const std::vector<double>& embedding);

  double drift_score() const { return drift_; }
  bool drifting() const { return drift_ > cfg_.z_threshold; }
  bool calibrated() const { return calibrated_; }
  /// Resets the running state (keeps calibration).
  void reset();

 private:
  TemporalMonitorConfig cfg_;
  std::vector<double> baseline_mean_, baseline_std_, ema_;
  double drift_ = 0.0;
  bool calibrated_ = false;
  bool has_ema_ = false;
};

}  // namespace s2a::monitor
