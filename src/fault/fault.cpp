#include "fault/fault.hpp"

#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::fault {

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropout:
      return "dropout";
    case FaultKind::kNaNPayload:
      return "nan_payload";
    case FaultKind::kInfPayload:
      return "inf_payload";
    case FaultKind::kStuckPayload:
      return "stuck_payload";
    case FaultKind::kLatencySpike:
      return "latency_spike";
    case FaultKind::kClientDropout:
      return "client_dropout";
    case FaultKind::kClientStraggler:
      return "client_straggler";
    case FaultKind::kClientCorrupt:
      return "client_corrupt";
    case FaultKind::kLinkPartition:
      return "link_partition";
    case FaultKind::kLinkLatencySpike:
      return "link_latency_spike";
    case FaultKind::kLinkBandwidthCollapse:
      return "link_bandwidth_collapse";
    case FaultKind::kLinkCorrupt:
      return "link_corrupt";
  }
  return "?";
}

namespace {
net::LinkFaultKind to_link_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkLatencySpike:
      return net::LinkFaultKind::kLatencySpike;
    case FaultKind::kLinkBandwidthCollapse:
      return net::LinkFaultKind::kBandwidthCollapse;
    case FaultKind::kLinkCorrupt:
      return net::LinkFaultKind::kCorrupt;
    default:
      return net::LinkFaultKind::kPartition;
  }
}
}  // namespace

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (FaultEvent& ev : events_) {
    S2A_CHECK_MSG(ev.end >= ev.start, fault_name(ev.kind));
    if (ev.kind == FaultKind::kClientStraggler)
      S2A_CHECK_MSG(ev.magnitude >= 1.0, "straggler multiplier must be >= 1");
    if (ev.kind == FaultKind::kLatencySpike)
      S2A_CHECK_MSG(ev.magnitude >= 0.0, "latency spike must be >= 0");
    // Link-kind severities are clamped, not trusted: an out-of-range
    // entry (a 1e9-second "spike", a negative bandwidth factor, a NaN
    // corruption probability) cannot produce an unbounded fault
    // (tests/net_test.cpp regression).
    if (ev.is_link_kind())
      ev.magnitude = net::clamp_link_magnitude(to_link_kind(ev.kind),
                                               ev.magnitude);
  }
}

const FaultEvent* FaultPlan::component_fault_at(double t) const {
  for (const FaultEvent& ev : events_)
    if (!ev.is_client_kind() && !ev.is_link_kind() && t >= ev.start &&
        t < ev.end)
      return &ev;
  return nullptr;
}

const FaultEvent* FaultPlan::link_fault_at(double t) const {
  for (const FaultEvent& ev : events_)
    if (ev.is_link_kind() && t >= ev.start && t < ev.end) return &ev;
  return nullptr;
}

net::LinkFaultSchedule FaultPlan::link_schedule() const {
  std::vector<net::LinkFaultWindow> windows;
  for (const FaultEvent& ev : events_) {
    if (!ev.is_link_kind()) continue;
    net::LinkFaultWindow w;
    w.kind = to_link_kind(ev.kind);
    w.start_s = ev.start;
    w.end_s = ev.end;
    w.magnitude = ev.magnitude;
    windows.push_back(w);
  }
  return net::LinkFaultSchedule(std::move(windows));
}

const FaultEvent* FaultPlan::client_fault_at(long round, int client) const {
  const double r = static_cast<double>(round);
  for (const FaultEvent& ev : events_)
    if (ev.is_client_kind() && r >= ev.start && r < ev.end &&
        (ev.target < 0 || ev.target == client))
      return &ev;
  return nullptr;
}

FaultPlan FaultPlan::random_component_plan(std::uint64_t seed,
                                           double horizon_s, int events,
                                           double mean_duration_s) {
  S2A_CHECK(horizon_s > 0.0 && events >= 0 && mean_duration_s > 0.0);
  Rng rng(seed);
  std::vector<FaultEvent> evs;
  evs.reserve(static_cast<std::size_t>(events));
  for (int i = 0; i < events; ++i) {
    FaultEvent ev;
    ev.kind = static_cast<FaultKind>(rng.uniform_int(
        static_cast<int>(FaultKind::kDropout),
        static_cast<int>(FaultKind::kLatencySpike)));
    ev.start = rng.uniform(0.0, horizon_s);
    ev.end = ev.start + rng.uniform(0.5, 1.5) * mean_duration_s;
    if (ev.kind == FaultKind::kLatencySpike)
      ev.magnitude = rng.uniform(0.05, 0.5);
    evs.push_back(ev);
  }
  return FaultPlan(std::move(evs));
}

FaultPlan FaultPlan::random_client_plan(std::uint64_t seed, long rounds,
                                        int clients, int events) {
  S2A_CHECK(rounds > 0 && clients > 0 && events >= 0);
  Rng rng(seed);
  std::vector<FaultEvent> evs;
  evs.reserve(static_cast<std::size_t>(events));
  for (int i = 0; i < events; ++i) {
    FaultEvent ev;
    ev.kind = static_cast<FaultKind>(rng.uniform_int(
        static_cast<int>(FaultKind::kClientDropout),
        static_cast<int>(FaultKind::kClientCorrupt)));
    ev.start = rng.uniform_int(0, static_cast<int>(rounds) - 1);
    ev.end = ev.start + rng.uniform_int(1, 3);
    ev.target = rng.uniform_int(0, clients - 1);
    if (ev.kind == FaultKind::kClientStraggler)
      ev.magnitude = rng.uniform(2.0, 6.0);
    evs.push_back(ev);
  }
  return FaultPlan(std::move(evs));
}

FaultPlan FaultPlan::random_link_plan(std::uint64_t seed, double horizon_s,
                                      int events, double mean_duration_s) {
  S2A_CHECK(horizon_s > 0.0 && events >= 0 && mean_duration_s > 0.0);
  Rng rng(seed);
  std::vector<FaultEvent> evs;
  evs.reserve(static_cast<std::size_t>(events));
  for (int i = 0; i < events; ++i) {
    FaultEvent ev;
    ev.kind = static_cast<FaultKind>(rng.uniform_int(
        static_cast<int>(FaultKind::kLinkPartition),
        static_cast<int>(FaultKind::kLinkCorrupt)));
    ev.start = rng.uniform(0.0, horizon_s);
    ev.end = ev.start + rng.uniform(0.5, 1.5) * mean_duration_s;
    switch (ev.kind) {
      case FaultKind::kLinkLatencySpike:
        ev.magnitude = rng.uniform(0.01, 0.2);
        break;
      case FaultKind::kLinkBandwidthCollapse:
        ev.magnitude = rng.uniform(0.02, 0.5);
        break;
      case FaultKind::kLinkCorrupt:
        ev.magnitude = rng.uniform(0.1, 0.9);
        break;
      default:
        break;  // partition has no magnitude
    }
    evs.push_back(ev);
  }
  return FaultPlan(std::move(evs));
}

FaultySensor::FaultySensor(core::Sensor& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {}

core::Observation FaultySensor::sense(double now, Rng& rng) {
  const FaultEvent* ev = plan_.component_fault_at(now);
  if (ev == nullptr) {
    last_ = inner_.sense(now, rng);
    has_last_ = true;
    return last_;
  }
  ++injected_;
  S2A_COUNTER_ADD("fault.injected", 1);
  switch (ev->kind) {
    case FaultKind::kDropout:
      throw core::SensorFault("injected dropout");
    case FaultKind::kNaNPayload: {
      core::Observation obs = inner_.sense(now, rng);
      for (double& v : obs.data)
        v = std::numeric_limits<double>::quiet_NaN();
      return obs;
    }
    case FaultKind::kInfPayload: {
      core::Observation obs = inner_.sense(now, rng);
      for (double& v : obs.data) v = std::numeric_limits<double>::infinity();
      return obs;
    }
    case FaultKind::kStuckPayload:
      // A frozen front-end repeats its last frame; before any good frame
      // exists it behaves like a dropout.
      if (has_last_) return last_;
      throw core::SensorFault("stuck before first frame");
    case FaultKind::kLatencySpike: {
      core::Observation obs = inner_.sense(now, rng);
      obs.extra_latency_s += ev->magnitude;
      last_ = obs;
      has_last_ = true;
      return obs;
    }
    default:
      break;  // client kinds never match component_fault_at()
  }
  last_ = inner_.sense(now, rng);
  has_last_ = true;
  return last_;
}

FaultyProcessor::FaultyProcessor(core::Processor& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {}

std::vector<double> FaultyProcessor::process(const core::Observation& obs,
                                             Rng& rng) {
  const FaultEvent* ev =
      plan_.component_fault_at(static_cast<double>(calls_));
  ++calls_;
  std::vector<double> out = inner_.process(obs, rng);
  if (ev != nullptr) {
    switch (ev->kind) {
      case FaultKind::kNaNPayload:
        ++injected_;
        S2A_COUNTER_ADD("fault.injected", 1);
        for (double& v : out) v = std::numeric_limits<double>::quiet_NaN();
        break;
      case FaultKind::kInfPayload:
        ++injected_;
        S2A_COUNTER_ADD("fault.injected", 1);
        for (double& v : out) v = std::numeric_limits<double>::infinity();
        break;
      case FaultKind::kStuckPayload:
        if (has_last_) {
          ++injected_;
          S2A_COUNTER_ADD("fault.injected", 1);
          out = last_out_;
        }
        break;
      default:
        break;  // dropout/latency don't apply to a pure function stage
    }
  }
  last_out_ = out;
  has_last_ = true;
  return out;
}

}  // namespace s2a::fault
