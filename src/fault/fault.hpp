// s2a::fault — deterministic, seeded runtime fault injection
// (docs/RESILIENCE.md). Where src/sim/corruptions.hpp perturbs point
// clouds offline, this layer attacks the *loop* while it runs: decorator
// wrappers inject sensor dropouts, NaN/Inf/stuck payloads and latency
// spikes at scheduled times, and a client-side schedule makes federated
// rounds lose, delay or corrupt client updates. Everything is driven by
// a FaultPlan — a value type of explicit event windows — so a chaos run
// is exactly reproducible from its seed, at any thread count.
//
// Dependency note: this library sits above core (it wraps core::Sensor /
// core::Processor) and below federated (run_federated consumes a
// FaultPlan); it must never include federated headers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/loop.hpp"
#include "net/link.hpp"
#include "util/rng.hpp"

namespace s2a::fault {

enum class FaultKind {
  // Sensor/processor-side kinds; event windows are [start, end) seconds
  // of loop time (FaultySensor) or process() call indices
  // (FaultyProcessor).
  kDropout = 0,    ///< acquisition fails: FaultySensor throws SensorFault
  kNaNPayload,     ///< payload replaced with quiet NaNs
  kInfPayload,     ///< payload replaced with +Inf
  kStuckPayload,   ///< sensor repeats its last good payload
  kLatencySpike,   ///< adds `magnitude` seconds of acquisition delay
  // Client-side kinds; event windows are [start, end) federated rounds
  // and `target` selects the client (-1 = every client).
  kClientDropout,  ///< client never responds (no compute, no update)
  kClientStraggler,///< response latency multiplied by `magnitude`
  kClientCorrupt,  ///< update arrives with a non-finite payload
  // Link-side kinds; event windows are [start, end) seconds of loop
  // time on the edge↔cloud uplink. Consumed via link_schedule() by
  // net::LinkSim; magnitudes are clamped to each kind's legal range
  // (net::clamp_link_magnitude) rather than trusted.
  kLinkPartition,        ///< uplink fully down: nothing delivered
  kLinkLatencySpike,     ///< extra one-way delay of `magnitude` seconds
  kLinkBandwidthCollapse,///< throughput multiplied by `magnitude` (slow drip)
  kLinkCorrupt,          ///< responses corrupted with P = `magnitude`
};
const char* fault_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDropout;
  double start = 0.0;  ///< window start (inclusive): seconds / calls / rounds
  double end = 0.0;    ///< window end (exclusive)
  int target = -1;     ///< client id for client kinds (-1 = any client)
  double magnitude = 0.0;  ///< latency-spike seconds / straggler multiplier

  bool is_client_kind() const {
    return kind == FaultKind::kClientDropout ||
           kind == FaultKind::kClientStraggler ||
           kind == FaultKind::kClientCorrupt;
  }
  bool is_link_kind() const {
    return kind == FaultKind::kLinkPartition ||
           kind == FaultKind::kLinkLatencySpike ||
           kind == FaultKind::kLinkBandwidthCollapse ||
           kind == FaultKind::kLinkCorrupt;
  }
};

/// An immutable schedule of fault windows. Queries scan in declaration
/// order and return the first active event, so overlapping windows have
/// a deterministic winner.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// First active sensor/processor-side event at time/call-index `t`.
  const FaultEvent* component_fault_at(double t) const;
  /// First active client-side event for (round, client).
  const FaultEvent* client_fault_at(long round, int client) const;
  /// First active link-side event at loop time `t`.
  const FaultEvent* link_fault_at(double t) const;

  /// The plan's link-side events as a net::LinkFaultSchedule (magnitudes
  /// clamped per kind), ready to hand to a net::LinkSim endpoint.
  net::LinkFaultSchedule link_schedule() const;

  /// Seeded random sensor-fault plan: `events` windows over
  /// [0, horizon_s), kinds drawn uniformly from the five component
  /// kinds, each lasting uniform(0.5, 1.5) * mean_duration_s. Same seed
  /// → identical plan, everywhere.
  static FaultPlan random_component_plan(std::uint64_t seed, double horizon_s,
                                         int events, double mean_duration_s);
  /// Seeded random client-fault plan: `events` windows over
  /// [0, rounds) × [0, clients), kinds drawn from the three client
  /// kinds (straggler magnitude uniform in [2, 6]).
  static FaultPlan random_client_plan(std::uint64_t seed, long rounds,
                                      int clients, int events);
  /// Seeded random link-fault plan: `events` windows over [0, horizon_s),
  /// kinds drawn uniformly from the four link kinds (spike magnitude
  /// uniform in [0.01, 0.2] s, collapse factor in [0.02, 0.5], corrupt
  /// probability in [0.1, 0.9]). Same seed → identical plan, everywhere.
  static FaultPlan random_link_plan(std::uint64_t seed, double horizon_s,
                                    int events, double mean_duration_s);

 private:
  std::vector<FaultEvent> events_;
};

/// Decorator injecting the plan's component faults into a Sensor.
/// Windows are indexed by the `now` passed to sense(), so every retry
/// attempt inside a dropout window fails — which is what exhausts the
/// loop's retry budget and exercises degradation.
class FaultySensor : public core::Sensor {
 public:
  FaultySensor(core::Sensor& inner, FaultPlan plan);

  core::Observation sense(double now, Rng& rng) override;

  long faults_injected() const { return injected_; }

 private:
  core::Sensor& inner_;
  FaultPlan plan_;
  core::Observation last_;
  bool has_last_ = false;
  long injected_ = 0;
};

/// Decorator injecting payload faults into a Processor. Windows are
/// indexed by process() call count (a processor has no clock). Only the
/// payload kinds apply: kNaNPayload / kInfPayload corrupt the output,
/// kStuckPayload repeats the previous output; other kinds pass through.
class FaultyProcessor : public core::Processor {
 public:
  FaultyProcessor(core::Processor& inner, FaultPlan plan);

  std::vector<double> process(const core::Observation& obs,
                              Rng& rng) override;
  double energy_per_call_j() const override {
    return inner_.energy_per_call_j();
  }

  long faults_injected() const { return injected_; }

 private:
  core::Processor& inner_;
  FaultPlan plan_;
  std::vector<double> last_out_;
  bool has_last_ = false;
  long calls_ = 0;
  long injected_ = 0;
};

}  // namespace s2a::fault
