#include "federated/hardware.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::federated {

std::vector<HardwareProfile> make_heterogeneous_fleet(int clients, Rng& rng) {
  S2A_CHECK(clients > 0);
  std::vector<HardwareProfile> fleet;
  const char* tiers[] = {"server", "desktop", "mobile", "embedded"};
  for (int i = 0; i < clients; ++i) {
    HardwareProfile hw;
    const int tier = i % 4;
    hw.name = std::string(tiers[tier]) + "-" + std::to_string(i);
    // Capability decreases ~3× per tier; jitter ±20%.
    const double scale = std::pow(3.0, -tier) * rng.uniform(0.8, 1.2);
    hw.throughput_macs_per_s = 4e9 * scale;
    hw.energy_per_mac_j = 10e-12 / std::max(0.05, scale);  // weaker = less efficient
    hw.memory_bytes = 256e6 * scale;
    // Round deadlines and energy budgets are uniform across the fleet (the
    // application's real-time constraint), so weaker devices must adapt —
    // the premise of DC-NAS and HaLo-FL.
    hw.latency_budget_s = 4e-4;
    hw.energy_budget_j = 4e-6;
    fleet.push_back(hw);
  }
  return fleet;
}

RoundCost round_cost(double training_macs, const HardwareProfile& hw,
                     const PrecisionConfig& p, double model_fraction) {
  S2A_CHECK(training_macs >= 0.0);
  S2A_CHECK(model_fraction > 0.0 && model_fraction <= 1.0);
  S2A_CHECK(p.weight_bits >= 2 && p.weight_bits <= 32);
  S2A_CHECK(p.activation_bits >= 2 && p.activation_bits <= 32);
  S2A_CHECK(p.gradient_bits >= 2 && p.gradient_bits <= 32);

  const double mult_factor =
      (static_cast<double>(p.weight_bits) * p.activation_bits) / (32.0 * 32.0);
  const double pack_factor =
      static_cast<double>(std::max(p.weight_bits, p.activation_bits)) / 32.0;
  // Gradient precision affects the backward-pass two-thirds of training.
  const double grad_factor =
      (1.0 + 2.0 * static_cast<double>(p.gradient_bits) / 32.0) / 3.0;

  RoundCost cost;
  cost.energy_j =
      training_macs * hw.energy_per_mac_j * mult_factor * grad_factor;
  cost.latency_s =
      training_macs / hw.throughput_macs_per_s * pack_factor * grad_factor;
  // fp32 MAC array reference area: 0.01 mm²/MAC-lane × 64 lanes.
  cost.area_mm2 = 0.64 * mult_factor * model_fraction;
  return cost;
}

double quantize_value(double v, double scale, int bits) {
  if (bits >= 32 || scale <= 0.0) return v;
  const double levels = static_cast<double>((1 << (bits - 1)) - 1);
  const double q = std::round(std::clamp(v / scale, -1.0, 1.0) * levels);
  return q / levels * scale;
}

void fake_quantize(std::vector<double>& values, int bits) {
  if (bits >= 32 || values.empty()) return;
  double scale = 0.0;
  for (double v : values) scale = std::max(scale, std::abs(v));
  if (scale == 0.0) return;
  for (double& v : values) v = quantize_value(v, scale, bits);
}

}  // namespace s2a::federated
