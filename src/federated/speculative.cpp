#include "federated/speculative.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::federated {

MarkovModel::MarkovModel(int vocab, nn::Tensor transitions)
    : vocab_(vocab), t_(std::move(transitions)) {
  S2A_CHECK(t_.shape() == (std::vector<int>{vocab, vocab}));
  for (int i = 0; i < vocab; ++i) {
    double row = 0.0;
    for (int j = 0; j < vocab; ++j) {
      S2A_CHECK(t_.at(i, j) >= 0.0);
      row += t_.at(i, j);
    }
    S2A_CHECK_MSG(std::abs(row - 1.0) < 1e-9, "row " << i << " sums to " << row);
  }
}

MarkovModel MarkovModel::random(int vocab, double peakedness, Rng& rng) {
  S2A_CHECK(vocab > 1 && peakedness > 0.0);
  nn::Tensor t({vocab, vocab});
  for (int i = 0; i < vocab; ++i) {
    double row = 0.0;
    for (int j = 0; j < vocab; ++j) {
      // Exponentiated uniform draws: larger peakedness → spikier rows.
      const double e = std::pow(rng.uniform(), peakedness);
      t.at(i, j) = e;
      row += e;
    }
    for (int j = 0; j < vocab; ++j) t.at(i, j) /= row;
  }
  return MarkovModel(vocab, std::move(t));
}

MarkovModel MarkovModel::smoothed(double eps) const {
  S2A_CHECK(eps >= 0.0 && eps <= 1.0);
  nn::Tensor t = t_;
  const double u = 1.0 / vocab_;
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = (1.0 - eps) * t[i] + eps * u;
  return MarkovModel(vocab_, std::move(t));
}

double MarkovModel::prob(int current, int next) const {
  S2A_DCHECK(current >= 0 && current < vocab_ && next >= 0 && next < vocab_);
  return t_.at(current, next);
}

int MarkovModel::sample(int current, Rng& rng) const {
  double u = rng.uniform();
  for (int j = 0; j < vocab_; ++j) {
    u -= t_.at(current, j);
    if (u <= 0.0) return j;
  }
  return vocab_ - 1;
}

std::vector<int> autoregressive_decode(const MarkovModel& model,
                                       int num_tokens, Rng& rng) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(num_tokens));
  int ctx = 0;
  for (int i = 0; i < num_tokens; ++i) {
    ctx = model.sample(ctx, rng);
    out.push_back(ctx);
  }
  return out;
}

SpeculativeStats speculative_decode(const MarkovModel& target,
                                    const MarkovModel& draft, int num_tokens,
                                    const SpeculativeConfig& cfg, Rng& rng,
                                    std::vector<int>* out) {
  S2A_CHECK(target.vocab() == draft.vocab());
  S2A_CHECK(cfg.gamma >= 1);
  const int vocab = target.vocab();

  SpeculativeStats stats;
  std::vector<int> seq;
  int ctx = 0;

  while (stats.tokens_generated < num_tokens) {
    // Draft proposes gamma tokens autoregressively.
    std::vector<int> proposal;
    int dctx = ctx;
    for (int g = 0; g < cfg.gamma; ++g) {
      const int tok = draft.sample(dctx, rng);
      proposal.push_back(tok);
      dctx = tok;
      ++stats.draft_tokens;
    }

    // One (parallel) target pass verifies all proposed positions.
    ++stats.target_passes;
    int vctx = ctx;
    bool rejected = false;
    for (int g = 0; g < cfg.gamma && stats.tokens_generated < num_tokens; ++g) {
      const int tok = proposal[static_cast<std::size_t>(g)];
      const double p = target.prob(vctx, tok);
      const double q = draft.prob(vctx, tok);
      if (rng.uniform() < std::min(1.0, p / q)) {
        seq.push_back(tok);
        ++stats.tokens_generated;
        ++stats.accepted;
        vctx = tok;
      } else {
        // Resample from the residual distribution max(0, p−q)/Z.
        std::vector<double> residual(static_cast<std::size_t>(vocab));
        double z = 0.0;
        for (int j = 0; j < vocab; ++j) {
          residual[static_cast<std::size_t>(j)] =
              std::max(0.0, target.prob(vctx, j) - draft.prob(vctx, j));
          z += residual[static_cast<std::size_t>(j)];
        }
        int tok2 = vocab - 1;
        if (z > 0.0) {
          double u = rng.uniform() * z;
          for (int j = 0; j < vocab; ++j) {
            u -= residual[static_cast<std::size_t>(j)];
            if (u <= 0.0) {
              tok2 = j;
              break;
            }
          }
        } else {
          tok2 = target.sample(vctx, rng);
        }
        seq.push_back(tok2);
        ++stats.tokens_generated;
        vctx = tok2;
        rejected = true;
        break;
      }
    }
    // Bonus token when every proposal was accepted (free: the target pass
    // already produced the next-position distribution).
    if (!rejected && stats.tokens_generated < num_tokens) {
      const int tok = target.sample(vctx, rng);
      seq.push_back(tok);
      ++stats.tokens_generated;
      vctx = tok;
    }
    ctx = vctx;
  }

  if (out != nullptr) *out = std::move(seq);
  return stats;
}

std::vector<double> unigram_distribution(const std::vector<int>& tokens,
                                         int vocab) {
  std::vector<double> dist(static_cast<std::size_t>(vocab), 0.0);
  if (tokens.empty()) return dist;
  for (int t : tokens) {
    S2A_CHECK(t >= 0 && t < vocab);
    dist[static_cast<std::size_t>(t)] += 1.0;
  }
  for (auto& d : dist) d /= static_cast<double>(tokens.size());
  return dist;
}

}  // namespace s2a::federated
