// Sparse top-k delta compression with error feedback (the uplink side of
// hierarchical federated scaling, docs/ARCHITECTURE.md).
//
// A participating client ships only the k largest-magnitude entries of
// its (flattened) model delta; everything it did not ship is carried in
// a per-client residual accumulator and added back the next time the
// client participates, so the compression error is fed back instead of
// lost ("error feedback" / EF-SGD). Selection is deterministic — ties
// break on the lower flat index — so compressed runs are bit-identical
// at every thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace s2a::federated {

/// One surviving entry of a compressed delta.
struct SparseEntry {
  std::uint32_t index = 0;  ///< flat position in the w1|b1|w2|b2 layout
  double value = 0.0;
};

/// A compressed client delta: entries sorted by ascending index.
struct SparseDelta {
  std::vector<SparseEntry> entries;
  std::size_t dense_numel = 0;  ///< size of the dense vector it came from
};

/// Modeled wire cost of a compressed delta: 16-byte header plus a
/// 4-byte index and 8-byte value per surviving entry.
std::size_t sparse_wire_bytes(const SparseDelta& delta);
/// Modeled wire cost of the dense alternative: 16-byte header plus
/// 8 bytes per parameter.
std::size_t dense_wire_bytes(std::size_t numel);

/// Number of entries kept at `k_fraction` of an `eligible_count`-entry
/// delta: ceil(fraction * eligible), at least 1 when anything is
/// eligible.
std::size_t topk_keep_count(std::size_t eligible_count, double k_fraction);

/// Magnitude top-k compression of `delta` (modified in place), with
/// optional error feedback and an optional eligibility mask.
///
///  * If `residual` is non-null it must be empty or sized like `delta`;
///    it is added into `delta` on eligible positions before selection
///    (an empty residual is grown to size, zero-filled), and afterwards
///    holds exactly the part of the corrected delta that was NOT
///    shipped — so shipped + residual' == delta_in + residual_in,
///    position-exact.
///  * If `eligible` is non-null it must be sized like `delta`; only
///    positions with a nonzero flag participate (DC-NAS clients never
///    ship — or carry residual for — the hidden units they did not
///    train this round).
///  * Selection keeps the topk_keep_count() largest |value| entries,
///    ties broken toward the lower index; exact zeros are never
///    shipped. k_fraction must be in (0, 1]; 1.0 ships every eligible
///    nonzero entry, so a residual (if present) drains to zero on the
///    eligible positions.
SparseDelta topk_compress(std::vector<double>& delta, double k_fraction,
                          std::vector<double>* residual,
                          const std::vector<unsigned char>* eligible);

}  // namespace s2a::federated
