#include "federated/hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "federated/compress.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/finite.hpp"
#include "util/thread_pool.hpp"

namespace s2a::federated {

const char* sample_mode_name(SampleMode mode) {
  switch (mode) {
    case SampleMode::kAll:
      return "all";
    case SampleMode::kUniform:
      return "uniform";
    case SampleMode::kWeightedByShard:
      return "weighted-by-shard";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Q32.32 fixed-point accumulation.
//
// Every weighted delta term is quantized to 2^-32 once — a function of
// the (client, position) pair alone — and summed in __int128. Integer
// addition is associative and commutative, so the aggregate is invariant
// under tree shape, chunk boundaries, and thread count: the property the
// flat-vs-hierarchical bit-identity acceptance test relies on.

constexpr double kFixedScale = 4294967296.0;  // 2^32

inline long long to_fixed(double v) {
  const double scaled = v * kFixedScale;
  // Saturate instead of invoking llround UB on out-of-range values; the
  // clamp is itself deterministic.
  if (scaled >= 9.2233720368547758e18)
    return std::numeric_limits<long long>::max();
  if (scaled <= -9.2233720368547758e18)
    return std::numeric_limits<long long>::min();
  return std::llround(scaled);
}

inline double from_fixed(__int128 v) {
  return static_cast<double>(v) / kFixedScale;
}

/// Offsets of each parameter tensor inside the flattened w1|b1|w2|b2
/// delta layout (the layout compress.hpp indexes into).
struct FlatLayout {
  int in = 0, hidden = 0, classes = 0;
  std::size_t w1 = 0, b1 = 0, w2 = 0, b2 = 0, total = 0;

  static FlatLayout of(const MlpParams& p) {
    FlatLayout l;
    l.in = p.in;
    l.hidden = p.hidden;
    l.classes = p.classes;
    l.w1 = 0;
    l.b1 = l.w1 + p.w1.numel();
    l.w2 = l.b1 + p.b1.numel();
    l.b2 = l.w2 + p.w2.numel();
    l.total = l.b2 + p.b2.numel();
    return l;
  }
};

/// One level's (or one chunk's) streaming aggregation state. Weights are
/// exact integer sums (shard sizes), values Q32.32 sums.
struct FixedAcc {
  std::vector<__int128> v;          // total entries, flat layout
  std::vector<long long> unit_w;    // per hidden unit
  long long round_w = 0;
  int survivors = 0;
  long quarantined = 0;  // client deltas rejected by the finite check

  void resize(const FlatLayout& l) {
    v.assign(l.total, 0);
    unit_w.assign(static_cast<std::size_t>(l.hidden), 0);
    round_w = 0;
    survivors = 0;
    quarantined = 0;
  }
  void reset() {
    std::fill(v.begin(), v.end(), static_cast<__int128>(0));
    std::fill(unit_w.begin(), unit_w.end(), 0LL);
    round_w = 0;
    survivors = 0;
    quarantined = 0;
  }
  void merge(const FixedAcc& o) {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] += o.v[i];
    for (std::size_t j = 0; j < unit_w.size(); ++j) unit_w[j] += o.unit_w[j];
    round_w += o.round_w;
    survivors += o.survivors;
    quarantined += o.quarantined;
  }
  std::size_t bytes() const {
    return v.capacity() * sizeof(__int128) +
           unit_w.capacity() * sizeof(long long);
  }
};

/// Credit a surviving client's renormalization weights: one shard-size
/// unit per active hidden unit, plus the round (b2) weight.
void credit_weights(FixedAcc& acc, const std::vector<bool>& active,
                    long long wgt) {
  for (std::size_t j = 0; j < active.size(); ++j)
    if (active[j]) acc.unit_w[j] += wgt;
  acc.round_w += wgt;
  ++acc.survivors;
}

/// Fold a dense delta: active-unit positions of w1/b1/w2 plus all of b2,
/// exactly the positions flat FedAvg aggregates.
void fold_dense(FixedAcc& acc, const std::vector<double>& d,
                const std::vector<bool>& active, long long wgt,
                const FlatLayout& l) {
  credit_weights(acc, active, wgt);
  const double w = static_cast<double>(wgt);
  for (int j = 0; j < l.hidden; ++j) {
    if (!active[static_cast<std::size_t>(j)]) continue;
    const std::size_t row = l.w1 + static_cast<std::size_t>(j) * l.in;
    for (int i = 0; i < l.in; ++i) acc.v[row + i] += to_fixed(w * d[row + i]);
    acc.v[l.b1 + j] += to_fixed(w * d[l.b1 + j]);
    for (int k = 0; k < l.classes; ++k) {
      const std::size_t idx = l.w2 + static_cast<std::size_t>(k) * l.hidden + j;
      acc.v[idx] += to_fixed(w * d[idx]);
    }
  }
  for (int k = 0; k < l.classes; ++k)
    acc.v[l.b2 + k] += to_fixed(w * d[l.b2 + k]);
}

/// Fold a compressed delta: the client still earns full renormalization
/// credit for every unit it trained (a shipped zero and an unshipped
/// entry weigh the same), but only shipped entries carry value.
void fold_sparse(FixedAcc& acc, const SparseDelta& sd,
                 const std::vector<bool>& active, long long wgt) {
  credit_weights(acc, active, wgt);
  const double w = static_cast<double>(wgt);
  for (const SparseEntry& e : sd.entries)
    acc.v[e.index] += to_fixed(w * e.value);
}

/// Apply the (global-level) aggregate to the model in place, mirroring
/// flat FedAvg's renormalized update: per-unit weights for w1/b1/w2, the
/// round weight for b2, untouched units / lost rounds left alone.
void apply_aggregate(MlpParams& global, const FixedAcc& acc,
                     const FlatLayout& l) {
  for (int j = 0; j < l.hidden; ++j) {
    const long long uw = acc.unit_w[static_cast<std::size_t>(j)];
    if (uw == 0) continue;
    const double uwd = static_cast<double>(uw);
    const std::size_t row = l.w1 + static_cast<std::size_t>(j) * l.in;
    for (int i = 0; i < l.in; ++i)
      global.w1[static_cast<std::size_t>(j) * l.in + i] +=
          from_fixed(acc.v[row + i]) / uwd;
    global.b1[static_cast<std::size_t>(j)] += from_fixed(acc.v[l.b1 + j]) / uwd;
    for (int k = 0; k < l.classes; ++k)
      global.w2[static_cast<std::size_t>(k) * l.hidden + j] +=
          from_fixed(acc.v[l.w2 + static_cast<std::size_t>(k) * l.hidden + j]) /
          uwd;
  }
  if (acc.round_w > 0) {
    const double rwd = static_cast<double>(acc.round_w);
    for (int k = 0; k < l.classes; ++k)
      global.b2[static_cast<std::size_t>(k)] +=
          from_fixed(acc.v[l.b2 + k]) / rwd;
  }
}

void flatten_delta(const MlpParams& local, const MlpParams& global,
                   const FlatLayout& l, std::vector<double>& out) {
  std::size_t at = l.w1;
  for (std::size_t i = 0; i < global.w1.numel(); ++i)
    out[at++] = local.w1[i] - global.w1[i];
  for (std::size_t i = 0; i < global.b1.numel(); ++i)
    out[at++] = local.b1[i] - global.b1[i];
  for (std::size_t i = 0; i < global.w2.numel(); ++i)
    out[at++] = local.w2[i] - global.w2[i];
  for (std::size_t i = 0; i < global.b2.numel(); ++i)
    out[at++] = local.b2[i] - global.b2[i];
}

/// Compression eligibility: the positions the client trained (active
/// w1 rows / b1 entries / w2 columns) plus b2 — exactly the positions
/// fold_dense would ship.
void build_eligible(const std::vector<bool>& active, const FlatLayout& l,
                    std::vector<unsigned char>& out) {
  for (int j = 0; j < l.hidden; ++j) {
    const unsigned char on = active[static_cast<std::size_t>(j)] ? 1 : 0;
    const std::size_t row = l.w1 + static_cast<std::size_t>(j) * l.in;
    for (int i = 0; i < l.in; ++i) out[row + i] = on;
    out[l.b1 + j] = on;
    for (int k = 0; k < l.classes; ++k)
      out[l.w2 + static_cast<std::size_t>(k) * l.hidden + j] = on;
  }
  for (int k = 0; k < l.classes; ++k) out[l.b2 + k] = 1;
}

/// DC-NAS channel mask: top-`width` hidden units by ‖w1 row‖², computed
/// from the same norms ordering every client of the round sees.
void build_mask(FlStrategy strategy, int width,
                const std::vector<int>& dcnas_order, int hidden,
                std::vector<bool>& active) {
  if (strategy == FlStrategy::kDcNas && width < hidden) {
    active.assign(static_cast<std::size_t>(hidden), false);
    for (int k = 0; k < width; ++k)
      active[static_cast<std::size_t>(dcnas_order[static_cast<std::size_t>(k)])] =
          true;
  } else {
    active.assign(static_cast<std::size_t>(hidden), true);
  }
}

/// The per-round ‖w1 row‖² ordering flat FedAvg computes inside every
/// client task; hoisted because all clients sort the identical array.
std::vector<int> dcnas_ordering(const MlpParams& global) {
  std::vector<std::pair<double, int>> norms;
  norms.reserve(static_cast<std::size_t>(global.hidden));
  for (int j = 0; j < global.hidden; ++j) {
    double n = 0.0;
    const double* w = global.w1.data() + static_cast<std::size_t>(j) * global.in;
    for (int i = 0; i < global.in; ++i) n += w[i] * w[i];
    norms.push_back({n, j});
  }
  std::sort(norms.begin(), norms.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<int> order;
  order.reserve(norms.size());
  for (const auto& [n, j] : norms) order.push_back(j);
  return order;
}

/// Whether a client's update participates in this round's aggregation
/// (mirrors flat FedAvg; kCorrupt is resolved here because an injected
/// transmission corruption is statically known to be quarantined).
enum class ClientState : unsigned char {
  kOk = 0,      ///< responded in time; update reaches its edge
  kNoResponse,  ///< plan dropout: never computed, never responded
  kTimedOut,    ///< computed, but missed the edge's per-client deadline
  kCorrupt,     ///< arrived poisoned; quarantined at the edge boundary
};

/// One edge aggregator's round, resolved by the serial cost pre-pass.
struct EdgeRound {
  int edge_id = -1;
  std::size_t lo = 0, hi = 0;  ///< cohort index range of its clients
  double lat = 0.0;  ///< max over clients of min(latency, client deadline)
  int contributors = 0;  ///< clients whose update reached the edge intact
  bool reports = false;  ///< forwarded an aggregate (not plan-dropped)
  bool dropped = false;  ///< plan dropout or edge deadline exceeded
  bool poisoned = false; ///< aggregate arrives corrupt; quarantined above
  bool trains = false;   ///< survives edge AND region fate
};

/// Fixed per-client sampling salt so the cohort stream never aliases a
/// client's training stream (which is keyed by the raw client id).
constexpr std::uint64_t kSamplerSalt = 0x5a5ed5a317a6c0deULL;

std::size_t fleet_edges(std::size_t clients, int clients_per_edge) {
  return (clients + static_cast<std::size_t>(clients_per_edge) - 1) /
         static_cast<std::size_t>(clients_per_edge);
}

}  // namespace

std::vector<int> sample_cohort(SampleMode mode, double fraction,
                               std::uint64_t round_seed,
                               const std::vector<std::vector<int>>& shards) {
  const int n = static_cast<int>(shards.size());
  std::vector<int> cohort;
  if (mode == SampleMode::kAll || fraction >= 1.0) {
    cohort.resize(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) cohort[static_cast<std::size_t>(c)] = c;
    return cohort;
  }
  S2A_CHECK(fraction > 0.0);
  const int k = std::max(
      1, std::min(n, static_cast<int>(std::ceil(
                         fraction * static_cast<double>(n)))));
  Rng srng(net::mix_seed(round_seed, kSamplerSalt));
  if (mode == SampleMode::kUniform) {
    cohort = srng.sample_without_replacement(n, k);
  } else {
    // Efraimidis–Spirakis weighted reservoir keys: u^(1/w) with w the
    // shard size; the k largest keys win. One uniform draw per client in
    // id order, so the cohort is a pure function of the round seed.
    std::vector<std::pair<double, int>> keys;
    keys.reserve(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      const double u = srng.uniform();
      const double w =
          static_cast<double>(shards[static_cast<std::size_t>(c)].size());
      const double key = w > 0.0 ? std::pow(u, 1.0 / w) : -1.0;
      keys.push_back({key, c});
    }
    std::sort(keys.begin(), keys.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    cohort.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
      cohort.push_back(keys[static_cast<std::size_t>(i)].second);
  }
  std::sort(cohort.begin(), cohort.end());
  return cohort;
}

HierResult run_federated_hier(FlStrategy strategy,
                              const sim::ClassificationDataset& train,
                              const sim::ClassificationDataset& test,
                              const std::vector<std::vector<int>>& shards,
                              const std::vector<HardwareProfile>& fleet,
                              const HierConfig& cfg, Rng& rng,
                              const fault::FaultPlan* faults) {
  S2A_CHECK(shards.size() == fleet.size());
  S2A_CHECK(!shards.empty());
  S2A_CHECK(cfg.fl.client_timeout_s > 0.0);
  S2A_CHECK(cfg.edge_timeout_s > 0.0);
  S2A_CHECK(cfg.clients_per_edge >= 1);
  S2A_CHECK(cfg.edges_per_region >= 1);
  S2A_CHECK(cfg.topk_fraction > 0.0 && cfg.topk_fraction <= 1.0);
  const int clients = static_cast<int>(shards.size());
  const bool compressing = cfg.topk_fraction < 1.0;

  MlpParams global =
      init_mlp(train.feature_dim, cfg.fl.hidden, train.num_classes, rng);
  const FlatLayout layout = FlatLayout::of(global);

  HierResult out;
  FlResult& res = out.fl;
  HierStats& hier = out.hier;
  hier.edges = static_cast<int>(
      fleet_edges(static_cast<std::size_t>(clients), cfg.clients_per_edge));
  hier.regions = static_cast<int>(fleet_edges(
      static_cast<std::size_t>(hier.edges), cfg.edges_per_region));
  hier.client_participation.assign(static_cast<std::size_t>(clients), 0);

  res.client_widths.assign(static_cast<std::size_t>(clients), cfg.fl.hidden);
  res.client_precisions.assign(static_cast<std::size_t>(clients),
                               PrecisionConfig{});
  // Per-client adaptation decisions (stable across rounds), for the whole
  // fleet — a client sampled for the first time in round 9 uses the same
  // choice it would have used in round 0.
  for (int c = 0; c < clients; ++c) {
    const auto& hw = fleet[static_cast<std::size_t>(c)];
    if (strategy == FlStrategy::kDcNas) {
      res.client_widths[static_cast<std::size_t>(c)] =
          select_width(hw, cfg.fl, shards[static_cast<std::size_t>(c)].size(),
                       train.feature_dim, train.num_classes);
    } else if (strategy == FlStrategy::kHaloFl) {
      const double round_macs =
          static_cast<double>(cfg.fl.local_epochs) *
          static_cast<double>(shards[static_cast<std::size_t>(c)].size()) *
          3.0 * static_cast<double>(mlp_macs(global, cfg.fl.hidden));
      res.client_precisions[static_cast<std::size_t>(c)] =
          select_precision(hw, cfg.fl, round_macs);
    }
  }

  // Per-client error-feedback residuals: client-device state, lazily
  // allocated on first participation, deliberately excluded from the
  // server-side accumulator accounting below.
  std::vector<std::vector<double>> residuals;
  if (compressing && cfg.error_feedback)
    residuals.resize(static_cast<std::size_t>(clients));

  const net::LinkSim uplink(cfg.uplink, net::LinkFaultSchedule{}, 0, 0);

  util::ThreadPool& pool = util::global_pool();
  const std::size_t pool_size = static_cast<std::size_t>(pool.size());

  // Streaming workspaces: one slot per in-flight chunk (≤ pool size),
  // reused across edges and rounds — the engine's memory never scales
  // with the client count.
  struct WorkSlot {
    MlpParams local;
    std::vector<bool> active;
    std::vector<double> delta;
    std::vector<unsigned char> eligible;
    FixedAcc acc;
    std::size_t bytes_wire = 0;
    std::size_t bytes_dense = 0;
  };
  std::vector<WorkSlot> slots;
  FixedAcc edge_acc, region_acc, global_acc;
  edge_acc.resize(layout);
  region_acc.resize(layout);
  global_acc.resize(layout);

  const auto slot_bytes = [&](const WorkSlot& s) {
    return layout.total * sizeof(double)         // model workspace
           + s.delta.capacity() * sizeof(double) // flattened delta
           + s.eligible.capacity()               // compression mask
           + s.acc.bytes();                      // chunk accumulator
  };
  const auto note_peak = [&] {
    std::size_t live =
        edge_acc.bytes() + region_acc.bytes() + global_acc.bytes();
    for (const WorkSlot& s : slots) live += slot_bytes(s);
    if (live > hier.peak_accumulator_bytes) hier.peak_accumulator_bytes = live;
  };
  note_peak();

  double total_area = 0.0;
  std::vector<int> contributing;  // per-edge scratch: clients that train

  for (int round = 0; round < cfg.fl.rounds; ++round) {
    S2A_TRACE_SCOPE_CAT("fed.round", "federated");
    S2A_COUNTER_ADD("fed.rounds", 1);

    // One serial draw per round; every other stream of the round
    // (sampler, per-client training rngs) is counter-derived from it, so
    // client streams are O(1) state and identical under any tree shape,
    // chunking, or thread count.
    const std::uint64_t round_seed = rng.next_u64();

    const std::vector<int> cohort = sample_cohort(
        cfg.sample_mode, cfg.sample_fraction, round_seed, shards);
    hier.sampled_client_rounds += static_cast<long>(cohort.size());
    S2A_COUNTER_ADD("fed.hier.sampled_clients",
                    static_cast<std::int64_t>(cohort.size()));

    const std::vector<int> dcnas_order =
        strategy == FlStrategy::kDcNas ? dcnas_ordering(global)
                                       : std::vector<int>{};

    // ---- Serial, client-ordered cost/fault pre-pass -------------------
    // Latencies (and therefore every timeout decision) are analytic:
    // local_train's MAC count is an exact integer function of shard size
    // and width, so status, energy, and deadline outcomes are resolved
    // *before* any training runs — clients whose update cannot reach the
    // global aggregate (timed out, corrupt, inside a doomed edge or
    // region) never burn simulated-training CPU here, while still being
    // billed the device energy they physically spent.
    std::vector<ClientState> state(cohort.size(), ClientState::kOk);
    std::vector<EdgeRound> edges;
    double round_latency = 0.0;

    for (std::size_t i = 0; i < cohort.size(); ++i) {
      const int c = cohort[i];
      const int edge_id = c / cfg.clients_per_edge;
      if (edges.empty() || edges.back().edge_id != edge_id) {
        if (!edges.empty()) edges.back().hi = i;
        EdgeRound e;
        e.edge_id = edge_id;
        e.lo = i;
        edges.push_back(e);
      }
      EdgeRound& edge = edges.back();

      const fault::FaultEvent* ev =
          faults != nullptr ? faults->client_fault_at(round, c) : nullptr;
      if (ev != nullptr && ev->kind == fault::FaultKind::kClientDropout) {
        state[i] = ClientState::kNoResponse;
        ++res.dropped_client_rounds;
        S2A_COUNTER_ADD("fed.client_dropouts", 1);
        continue;  // never computed: no energy, no latency
      }
      ++hier.client_participation[static_cast<std::size_t>(c)];

      double latency_mult = 1.0;
      bool corrupt = false;
      if (ev != nullptr) {
        if (ev->kind == fault::FaultKind::kClientStraggler)
          latency_mult = ev->magnitude;
        else if (ev->kind == fault::FaultKind::kClientCorrupt)
          corrupt = true;
      }

      const int width = res.client_widths[static_cast<std::size_t>(c)];
      const int active_count =
          strategy == FlStrategy::kDcNas ? width : cfg.fl.hidden;
      // Bit-identical to the value local_train returns: every addend is
      // the same integer-valued double, and integer sums below 2^53 are
      // exact in any association.
      const double macs = static_cast<double>(cfg.fl.local_epochs) *
                          static_cast<double>(
                              shards[static_cast<std::size_t>(c)].size()) *
                          3.0 *
                          static_cast<double>(mlp_macs(global, active_count));
      const double model_fraction =
          static_cast<double>(width) / cfg.fl.hidden;
      const RoundCost cost =
          round_cost(macs, fleet[static_cast<std::size_t>(c)],
                     res.client_precisions[static_cast<std::size_t>(c)],
                     model_fraction);
      res.total_energy_j += cost.energy_j;
      total_area += cost.area_mm2;

      double latency = cost.latency_s * latency_mult;
      if (cfg.bill_uplink) {
        // Deadline checks use the *planned* update size (the client does
        // not know its exact sparsity before training); billing below
        // uses the actual compressed size.
        const std::size_t planned =
            compressing
                ? 16 + topk_keep_count(
                           static_cast<std::size_t>(active_count) *
                                   (layout.in + 1 + layout.classes) +
                               layout.classes,
                           cfg.topk_fraction) *
                           12
                : dense_wire_bytes(layout.total);
        latency += uplink.estimate_rtt_s(planned, 0, 0.0);
      }
      if (latency > cfg.fl.client_timeout_s) {
        state[i] = ClientState::kTimedOut;
        ++res.dropped_client_rounds;
        S2A_COUNTER_ADD("fed.client_dropouts", 1);
      } else if (corrupt) {
        // An injected transmission corruption is statically known to be
        // quarantined by the edge's finite check, so it is resolved here
        // and the poisoned update is never simulated.
        state[i] = ClientState::kCorrupt;
        ++res.nonfinite_deltas;
        S2A_COUNTER_ADD("fed.nonfinite_deltas", 1);
      } else {
        ++edge.contributors;
      }
      edge.lat = std::max(edge.lat,
                          std::min(latency, cfg.fl.client_timeout_s));
    }
    if (!edges.empty()) edges.back().hi = cohort.size();

    // ---- Edge and region fate (faults + deadlines) --------------------
    // Latency folds are max/min only, so the round latency is exactly the
    // flat engine's max over clients when the tree has no upper-level
    // faults and an infinite edge deadline.
    std::size_t e = 0;
    while (e < edges.size()) {
      const int region_id = edges[e].edge_id / cfg.edges_per_region;
      double region_lat = 0.0;
      std::size_t region_begin = e;
      for (; e < edges.size() &&
             edges[e].edge_id / cfg.edges_per_region == region_id;
           ++e) {
        EdgeRound& edge = edges[e];
        double edge_mult = 1.0;
        const fault::FaultEvent* eev =
            cfg.edge_faults.client_fault_at(round, edge.edge_id);
        if (eev != nullptr) {
          if (eev->kind == fault::FaultKind::kClientDropout)
            edge.dropped = true;
          else if (eev->kind == fault::FaultKind::kClientStraggler)
            edge_mult = eev->magnitude;
          else if (eev->kind == fault::FaultKind::kClientCorrupt)
            edge.poisoned = true;
        }
        if (edge.dropped) continue;  // announced disconnect: no wait
        edge.reports = true;
        const double edge_lat = edge.lat * edge_mult;
        if (edge_lat > cfg.edge_timeout_s) {
          edge.dropped = true;  // region waits out exactly the deadline
          region_lat = std::max(region_lat, cfg.edge_timeout_s);
          continue;
        }
        region_lat = std::max(region_lat, edge_lat);
      }

      bool region_dropped = false;
      bool region_poisoned = false;
      double region_mult = 1.0;
      const fault::FaultEvent* rev =
          cfg.region_faults.client_fault_at(round, region_id);
      if (rev != nullptr) {
        if (rev->kind == fault::FaultKind::kClientDropout)
          region_dropped = true;
        else if (rev->kind == fault::FaultKind::kClientStraggler)
          region_mult = rev->magnitude;
        else if (rev->kind == fault::FaultKind::kClientCorrupt)
          region_poisoned = true;
      }
      if (!region_dropped) {
        const double lat = region_lat * region_mult;
        if (lat > cfg.edge_timeout_s) {
          region_dropped = true;
          round_latency = std::max(round_latency, cfg.edge_timeout_s);
        } else {
          round_latency = std::max(round_latency, lat);
        }
      }

      for (std::size_t k = region_begin; k < e; ++k) {
        EdgeRound& edge = edges[k];
        if (edge.dropped) {
          ++hier.dropped_edge_rounds;
          S2A_COUNTER_ADD("fed.hier.edge_drops", 1);
        } else if (edge.poisoned) {
          ++hier.quarantined_edges;
          S2A_COUNTER_ADD("fed.hier.edge_quarantines", 1);
        }
        edge.trains = !edge.dropped && !edge.poisoned && !region_dropped &&
                      !region_poisoned;
        // Surviving updates stranded inside a lost edge or region are
        // dropped client rounds: the counter sums losses across levels.
        if (!edge.trains && edge.contributors > 0) {
          res.dropped_client_rounds += edge.contributors;
          S2A_COUNTER_ADD("fed.client_dropouts", edge.contributors);
        }
      }
      if (region_dropped) {
        ++hier.dropped_region_rounds;
        S2A_COUNTER_ADD("fed.hier.region_drops", 1);
      } else if (region_poisoned) {
        ++hier.quarantined_regions;
        S2A_COUNTER_ADD("fed.hier.region_quarantines", 1);
      }
    }
    res.total_latency_s += round_latency;
    S2A_HISTOGRAM_RECORD("fed.round_latency_s", round_latency);

    // ---- Streaming training + aggregation over surviving edges --------
    global_acc.reset();
    std::size_t round_bytes = 0;
    std::size_t round_dense = 0;
    std::size_t r = 0;
    while (r < edges.size()) {
      const int region_id = edges[r].edge_id / cfg.edges_per_region;
      region_acc.reset();
      bool region_has_data = false;
      for (; r < edges.size() &&
             edges[r].edge_id / cfg.edges_per_region == region_id;
           ++r) {
        const EdgeRound& edge = edges[r];
        if (!edge.trains || edge.contributors == 0) continue;
        S2A_TRACE_SCOPE_CAT("fed.hier.edge_reduce", "federated");

        contributing.clear();
        for (std::size_t i = edge.lo; i < edge.hi; ++i)
          if (state[i] == ClientState::kOk) contributing.push_back(cohort[i]);
        const std::size_t m = contributing.size();
        const std::size_t grain =
            std::max<std::size_t>(1, (m + pool_size - 1) / pool_size);
        const std::size_t chunks = util::ThreadPool::num_chunks(0, m, grain);
        while (slots.size() < chunks) {
          WorkSlot s;
          s.delta.resize(layout.total);
          if (compressing) s.eligible.resize(layout.total);
          s.acc.resize(layout);
          slots.push_back(std::move(s));
        }
        note_peak();

        pool.parallel_for_chunks(
            0, m, grain, [&](std::size_t lo, std::size_t hi,
                             std::size_t chunk) {
              WorkSlot& s = slots[chunk];
              s.acc.reset();
              s.bytes_wire = 0;
              s.bytes_dense = 0;
              for (std::size_t i = lo; i < hi; ++i) {
                const int c = contributing[i];
                S2A_TRACE_SCOPE_CAT("fed.client_update", "federated");
                s.local = global;
                build_mask(strategy,
                           res.client_widths[static_cast<std::size_t>(c)],
                           dcnas_order, cfg.fl.hidden, s.active);
                Rng crng(net::mix_seed(round_seed,
                                       static_cast<std::uint64_t>(c)));
                local_train(s.local, train,
                            shards[static_cast<std::size_t>(c)], s.active,
                            res.client_precisions[static_cast<std::size_t>(c)],
                            cfg.fl.local_epochs, cfg.fl.batch, cfg.fl.lr,
                            crng);
                flatten_delta(s.local, global, layout, s.delta);
                // Genuine training blow-ups (as opposed to injected
                // corruption, which the pre-pass already resolved) are
                // quarantined at the edge boundary, and the client's
                // residual is left untouched — nothing was shipped.
                if (!util::all_finite(s.delta)) {
                  ++s.acc.quarantined;
                  continue;
                }
                const long long wgt = static_cast<long long>(
                    shards[static_cast<std::size_t>(c)].size());
                s.bytes_dense += dense_wire_bytes(layout.total);
                if (compressing) {
                  build_eligible(s.active, layout, s.eligible);
                  std::vector<double>* resid =
                      cfg.error_feedback
                          ? &residuals[static_cast<std::size_t>(c)]
                          : nullptr;
                  const SparseDelta sd = topk_compress(
                      s.delta, cfg.topk_fraction, resid, &s.eligible);
                  s.bytes_wire += sparse_wire_bytes(sd);
                  fold_sparse(s.acc, sd, s.active, wgt);
                } else {
                  s.bytes_wire += dense_wire_bytes(layout.total);
                  fold_dense(s.acc, s.delta, s.active, wgt, layout);
                }
              }
            });

        // Chunk → edge merge, serial in chunk order; the integer sums
        // make the order irrelevant to the result.
        edge_acc.reset();
        for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
          edge_acc.merge(slots[chunk].acc);
          round_bytes += slots[chunk].bytes_wire;
          round_dense += slots[chunk].bytes_dense;
        }
        // Edge → region forward: the fixed-point aggregate itself. The
        // forward cost is identical in the dense counterfactual, so the
        // compression ratio isolates the client-uplink savings.
        region_acc.merge(edge_acc);
        region_has_data = true;
        const std::size_t forward = 16 + layout.total * sizeof(__int128) +
                                    static_cast<std::size_t>(layout.hidden) *
                                        sizeof(long long) +
                                    8;
        round_bytes += forward;
        round_dense += forward;
      }
      if (region_has_data) {
        global_acc.merge(region_acc);
        const std::size_t forward = 16 + layout.total * sizeof(__int128) +
                                    static_cast<std::size_t>(layout.hidden) *
                                        sizeof(long long) +
                                    8;
        round_bytes += forward;
        round_dense += forward;
      }
    }
    hier.bytes_on_wire += static_cast<double>(round_bytes);
    hier.dense_bytes += static_cast<double>(round_dense);
    S2A_COUNTER_ADD("fed.hier.bytes_on_wire",
                    static_cast<std::int64_t>(round_bytes));

    res.nonfinite_deltas += global_acc.quarantined;
    if (global_acc.quarantined > 0)
      S2A_COUNTER_ADD("fed.nonfinite_deltas",
                      static_cast<std::int64_t>(global_acc.quarantined));
    res.survivors_per_round.push_back(global_acc.survivors);
    S2A_GAUGE_SET("fed.round_survivors", global_acc.survivors);

    {
      S2A_TRACE_SCOPE_CAT("fed.aggregate", "federated");
      apply_aggregate(global, global_acc, layout);
    }
    {
      S2A_TRACE_SCOPE_CAT("fed.evaluate", "federated");
      res.accuracy_per_round.push_back(evaluate_accuracy(global, test));
    }
  }

  res.final_accuracy = res.accuracy_per_round.back();
  res.mean_area_mm2 =
      total_area / (static_cast<double>(clients) * cfg.fl.rounds);
  S2A_GAUGE_SET("fed.hier.peak_accumulator_bytes",
                static_cast<double>(hier.peak_accumulator_bytes));
  return out;
}

}  // namespace s2a::federated
