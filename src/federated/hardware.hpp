// Hardware heterogeneity and cost modeling for federated multi-agent
// loops (Sec. VII, Fig. 10): each client has its own compute throughput,
// memory, and energy efficiency, and the cost model is
// precision-reconfigurable — the simulator HaLo-FL's selector searches
// over. Energy per MAC scales quadratically with operand width (multiplier
// energy), latency inversely with the packing factor, and accelerator
// area quadratically with the MAC array width.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace s2a::federated {

struct PrecisionConfig {
  int weight_bits = 32;
  int activation_bits = 32;
  int gradient_bits = 32;
};

struct HardwareProfile {
  std::string name = "edge-device";
  double throughput_macs_per_s = 1e9;   ///< fp32 MAC throughput
  double energy_per_mac_j = 20e-12;     ///< fp32 MAC energy
  double memory_bytes = 64e6;
  double latency_budget_s = 1.0;        ///< per-round target (DC-NAS input)
  double energy_budget_j = 0.5;         ///< per-round target (HaLo-FL input)
};

/// A heterogeneous fleet: profiles spanning ~an order of magnitude in
/// capability, mirroring the server/desktop/mobile/embedded spread of
/// Fig. 10.
std::vector<HardwareProfile> make_heterogeneous_fleet(int clients, Rng& rng);

struct RoundCost {
  double energy_j = 0.0;
  double latency_s = 0.0;
  double area_mm2 = 0.0;  ///< accelerator area proxy for the MAC config
};

/// Cost of executing `training_macs` on `hw` at precision `p`.
/// Scaling laws:
///   energy  ∝ (w_bits·a_bits)/32² per MAC (multiplier energy),
///   latency ∝ max(w,a)/32 (operand packing),
///   area    ∝ (w_bits·a_bits)/32² · model_fraction relative to a 45 nm
///           fp32 MAC array sized for the full model (DC-NAS's pruned
///           sub-networks need proportionally fewer lanes/buffers).
RoundCost round_cost(double training_macs, const HardwareProfile& hw,
                     const PrecisionConfig& p, double model_fraction = 1.0);

/// Symmetric uniform fake-quantization of a value set to `bits`
/// (per-tensor max scaling). 32 bits returns inputs unchanged.
void fake_quantize(std::vector<double>& values, int bits);
double quantize_value(double v, double scale, int bits);

}  // namespace s2a::federated
