// Edge-cloud speculative decoding (Sec. VII, [78]): a small edge "draft"
// model proposes γ tokens autoregressively; the cloud "target" model
// verifies them in one parallel pass, accepting each with probability
// min(1, p/q) and resampling from the residual on the first rejection.
// The construction provably preserves the target distribution while
// amortizing expensive target passes over multiple tokens.
//
// Models are first-order Markov chains over a small vocabulary — enough
// structure for nontrivial acceptance dynamics while keeping the exact
// token probabilities (and thus the correctness property) testable.
#pragma once

#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace s2a::federated {

/// Row-stochastic first-order Markov model: P(next | current).
class MarkovModel {
 public:
  MarkovModel(int vocab, nn::Tensor transitions);

  /// Random peaked transition table; higher `peakedness` concentrates
  /// mass on fewer successors (more predictable → higher acceptance).
  static MarkovModel random(int vocab, double peakedness, Rng& rng);
  /// Draft-model surrogate: (1−eps)·P + eps·uniform.
  MarkovModel smoothed(double eps) const;

  int vocab() const { return vocab_; }
  double prob(int current, int next) const;
  int sample(int current, Rng& rng) const;

 private:
  int vocab_;
  nn::Tensor t_;  // [vocab, vocab]
};

struct SpeculativeConfig {
  int gamma = 4;                   ///< draft tokens per verification pass
  double target_pass_latency = 1.0;///< cloud round trip (arbitrary units)
  double draft_token_latency = 0.05;
};

struct SpeculativeStats {
  long tokens_generated = 0;
  long target_passes = 0;
  long draft_tokens = 0;
  long accepted = 0;

  double acceptance_rate() const {
    return draft_tokens > 0 ? static_cast<double>(accepted) / draft_tokens : 0.0;
  }
  /// Tokens per target pass: 1.0 for plain autoregressive decoding.
  double tokens_per_pass() const {
    return target_passes > 0
               ? static_cast<double>(tokens_generated) / target_passes
               : 0.0;
  }
  double latency(const SpeculativeConfig& cfg) const {
    return target_passes * cfg.target_pass_latency +
           draft_tokens * cfg.draft_token_latency;
  }
  /// Wall-clock speedup over one-token-per-pass target decoding.
  double speedup(const SpeculativeConfig& cfg) const {
    const double baseline = tokens_generated * cfg.target_pass_latency;
    const double l = latency(cfg);
    return l > 0.0 ? baseline / l : 0.0;
  }
};

/// Generates `num_tokens` with speculative decoding; returns the sequence
/// via `out` (optional) and the pass/acceptance statistics.
SpeculativeStats speculative_decode(const MarkovModel& target,
                                    const MarkovModel& draft, int num_tokens,
                                    const SpeculativeConfig& config, Rng& rng,
                                    std::vector<int>* out = nullptr);

/// Plain autoregressive sampling from a model.
std::vector<int> autoregressive_decode(const MarkovModel& model,
                                       int num_tokens, Rng& rng);

/// Empirical unigram distribution of a sequence (for correctness tests).
std::vector<double> unigram_distribution(const std::vector<int>& tokens,
                                         int vocab);

}  // namespace s2a::federated
