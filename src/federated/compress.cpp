#include "federated/compress.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::federated {

std::size_t sparse_wire_bytes(const SparseDelta& delta) {
  return 16 + delta.entries.size() * (sizeof(std::uint32_t) + sizeof(double));
}

std::size_t dense_wire_bytes(std::size_t numel) {
  return 16 + numel * sizeof(double);
}

std::size_t topk_keep_count(std::size_t eligible_count, double k_fraction) {
  S2A_CHECK(k_fraction > 0.0 && k_fraction <= 1.0);
  if (eligible_count == 0) return 0;
  const double raw = std::ceil(k_fraction * static_cast<double>(eligible_count));
  return std::max<std::size_t>(1, static_cast<std::size_t>(raw));
}

SparseDelta topk_compress(std::vector<double>& delta, double k_fraction,
                          std::vector<double>* residual,
                          const std::vector<unsigned char>* eligible) {
  S2A_CHECK(k_fraction > 0.0 && k_fraction <= 1.0);
  const std::size_t n = delta.size();
  if (eligible != nullptr) S2A_CHECK(eligible->size() == n);
  if (residual != nullptr) {
    S2A_CHECK(residual->empty() || residual->size() == n);
    if (residual->empty()) residual->assign(n, 0.0);
  }

  const auto is_eligible = [&](std::size_t i) {
    return eligible == nullptr || (*eligible)[i] != 0;
  };

  // Fold the carried residual into the delta on eligible positions; the
  // ineligible ones keep their residual untouched for a later round in
  // which the client trains those units again.
  std::size_t eligible_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_eligible(i)) continue;
    ++eligible_count;
    if (residual != nullptr) delta[i] += (*residual)[i];
  }

  const std::size_t keep = topk_keep_count(eligible_count, k_fraction);

  // Candidate order: |value| descending, index ascending on ties — a
  // strict total order, so the kept set is unique no matter how the
  // selection algorithm permutes equal elements.
  std::vector<std::uint32_t> order;
  order.reserve(eligible_count);
  for (std::size_t i = 0; i < n; ++i)
    if (is_eligible(i) && delta[i] != 0.0)
      order.push_back(static_cast<std::uint32_t>(i));
  const auto better = [&](std::uint32_t a, std::uint32_t b) {
    const double ma = std::abs(delta[a]);
    const double mb = std::abs(delta[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  };
  if (order.size() > keep) {
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(keep),
                     order.end(), better);
    order.resize(keep);
  }
  std::sort(order.begin(), order.end());

  SparseDelta out;
  out.dense_numel = n;
  out.entries.reserve(order.size());
  for (std::uint32_t idx : order)
    out.entries.push_back({idx, delta[idx]});

  // Error feedback: everything eligible that was not shipped is carried;
  // shipped positions are fully discharged.
  if (residual != nullptr) {
    std::size_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_eligible(i)) continue;
      const bool shipped =
          next < order.size() && order[next] == static_cast<std::uint32_t>(i);
      if (shipped) {
        (*residual)[i] = 0.0;
        ++next;
      } else {
        (*residual)[i] = delta[i];
      }
    }
  }
  return out;
}

}  // namespace s2a::federated
