// Federated learning with heterogeneity-aware adaptation (Sec. VII).
//
// Three strategies over the same FedAvg skeleton:
//  * kStaticFl — classical FedAvg: every client trains the full model at
//    fp32 (the baseline Fig. 11 normalizes against).
//  * kDcNas    — DC-NAS [76]: per-client channel pruning; each client
//    trains the largest hidden width that fits its latency budget, with
//    magnitude-based channel selection and mask-aware aggregation.
//  * kHaloFl   — HaLo-FL [77]: per-client precision selection for
//    weights/activations/gradients via the precision-reconfigurable cost
//    model; training uses fake quantization at the chosen widths.
#pragma once

#include <limits>
#include <vector>

#include "fault/fault.hpp"
#include "federated/hardware.hpp"
#include "nn/tensor.hpp"
#include "sim/dataset.hpp"

namespace s2a::federated {

enum class FlStrategy { kStaticFl = 0, kDcNas, kHaloFl };
const char* strategy_name(FlStrategy s);

/// Two-layer MLP classifier held as plain tensors so aggregation can be
/// mask-aware and quantization explicit.
struct MlpParams {
  nn::Tensor w1, b1;  // [hidden, in], [hidden]
  nn::Tensor w2, b2;  // [classes, hidden], [classes]
  int in = 0, hidden = 0, classes = 0;
};

MlpParams init_mlp(int in, int hidden, int classes, Rng& rng);

/// Forward MACs for one sample restricted to `active_hidden` units.
std::size_t mlp_macs(const MlpParams& p, int active_hidden);

/// Accuracy over the listed indices (all if empty).
double evaluate_accuracy(const MlpParams& p,
                         const sim::ClassificationDataset& data,
                         const std::vector<int>& indices = {});

/// Local SGD with an active hidden-channel mask and fake quantization.
/// Returns the training MACs consumed.
double local_train(MlpParams& p, const sim::ClassificationDataset& data,
                   const std::vector<int>& shard,
                   const std::vector<bool>& active_hidden,
                   const PrecisionConfig& precision, int epochs, int batch,
                   double lr, Rng& rng);

struct FlConfig {
  int rounds = 15;
  int local_epochs = 2;
  int batch = 16;
  double lr = 0.08;
  int hidden = 48;
  /// DC-NAS candidate widths (largest fitting the latency budget wins).
  std::vector<int> width_candidates{8, 16, 24, 32, 40, 48};
  /// HaLo-FL candidate precisions, cheapest-first.
  std::vector<PrecisionConfig> precision_candidates{
      {6, 6, 8}, {8, 8, 8}, {8, 8, 16}, {16, 16, 16}, {32, 32, 32}};
  /// Per-round client response deadline, applied by the aggregator the
  /// client reports to — in hierarchical mode (hierarchy.hpp) that is
  /// the client's *edge aggregator*, of which the flat server is the
  /// one-edge special case. A client whose (possibly straggler-inflated,
  /// possibly uplink-billed) round latency exceeds this is dropped from
  /// aggregation and counted in FlResult::dropped_client_rounds; the
  /// aggregator waits out exactly the deadline, no longer. Infinity
  /// (the default) waits for everyone. Edge aggregates themselves answer
  /// to HierConfig::edge_timeout_s one level up.
  double client_timeout_s = std::numeric_limits<double>::infinity();
};

struct FlResult {
  double final_accuracy = 0.0;
  std::vector<double> accuracy_per_round;
  double total_energy_j = 0.0;   ///< sum over clients and rounds
  double total_latency_s = 0.0;  ///< sum over rounds of the slowest client
  double mean_area_mm2 = 0.0;    ///< mean accelerator config area
  /// Per-client adaptation choices (width or precision), for reporting.
  std::vector<int> client_widths;
  std::vector<PrecisionConfig> client_precisions;
  // Robustness accounting (docs/RESILIENCE.md). In hierarchical mode
  // dropped_client_rounds sums losses across every level of the tree:
  // plan dropouts, per-edge deadline timeouts, and surviving updates
  // stranded inside a dropped or quarantined edge/region.
  long dropped_client_rounds = 0;  ///< client rounds lost, all levels summed
  long nonfinite_deltas = 0;       ///< corrupt updates quarantined at the server
  std::vector<int> survivors_per_round;  ///< clients aggregated per round
};

/// Runs `config.rounds` of federated training. `faults` (optional)
/// schedules per-(round, client) failures — dropouts, stragglers,
/// corrupt updates (fault::FaultPlan client kinds); aggregation runs
/// deterministically over the surviving client set, and any update
/// containing a non-finite value is quarantined server-side. A round
/// that loses every client leaves the global model unchanged.
FlResult run_federated(FlStrategy strategy,
                       const sim::ClassificationDataset& train,
                       const sim::ClassificationDataset& test,
                       const std::vector<std::vector<int>>& shards,
                       const std::vector<HardwareProfile>& fleet,
                       const FlConfig& config, Rng& rng,
                       const fault::FaultPlan* faults = nullptr);

/// DC-NAS width selection: largest candidate whose fp32 round latency
/// fits the client's budget. Exposed for tests.
int select_width(const HardwareProfile& hw, const FlConfig& config,
                 std::size_t shard_size, int in, int classes);

/// HaLo-FL precision selection: cheapest candidate meeting both latency
/// and energy budgets (falls back to the cheapest overall). Exposed for
/// tests.
PrecisionConfig select_precision(const HardwareProfile& hw,
                                 const FlConfig& config,
                                 double round_macs);

}  // namespace s2a::federated
