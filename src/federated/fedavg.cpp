#include "federated/fedavg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/finite.hpp"
#include "util/thread_pool.hpp"

namespace s2a::federated {

const char* strategy_name(FlStrategy s) {
  switch (s) {
    case FlStrategy::kStaticFl:
      return "Static FL";
    case FlStrategy::kDcNas:
      return "DC-NAS";
    case FlStrategy::kHaloFl:
      return "HaLo-FL";
  }
  return "?";
}

MlpParams init_mlp(int in, int hidden, int classes, Rng& rng) {
  S2A_CHECK(in > 0 && hidden > 0 && classes > 1);
  MlpParams p;
  p.in = in;
  p.hidden = hidden;
  p.classes = classes;
  p.w1 = nn::Tensor::xavier(hidden, in, rng);
  p.b1 = nn::Tensor({hidden});
  p.w2 = nn::Tensor::xavier(classes, hidden, rng);
  p.b2 = nn::Tensor({classes});
  return p;
}

std::size_t mlp_macs(const MlpParams& p, int active_hidden) {
  return static_cast<std::size_t>(active_hidden) * (p.in + p.classes);
}

namespace {

// Forward for one sample; h and logits are outputs. Applies activation
// quantization when bits < 32.
void forward_one(const MlpParams& p, const double* x,
                 const std::vector<bool>& active, int act_bits,
                 std::vector<double>& h, std::vector<double>& logits) {
  h.assign(static_cast<std::size_t>(p.hidden), 0.0);
  double act_scale = 0.0;
  for (int j = 0; j < p.hidden; ++j) {
    if (!active[static_cast<std::size_t>(j)]) continue;
    double a = p.b1[static_cast<std::size_t>(j)];
    const double* w = p.w1.data() + static_cast<std::size_t>(j) * p.in;
    for (int i = 0; i < p.in; ++i) a += w[i] * x[i];
    h[static_cast<std::size_t>(j)] = a > 0.0 ? a : 0.0;  // ReLU
    act_scale = std::max(act_scale, std::abs(h[static_cast<std::size_t>(j)]));
  }
  if (act_bits < 32 && act_scale > 0.0)
    for (auto& v : h) v = quantize_value(v, act_scale, act_bits);

  logits.assign(static_cast<std::size_t>(p.classes), 0.0);
  for (int c = 0; c < p.classes; ++c) {
    double a = p.b2[static_cast<std::size_t>(c)];
    const double* w = p.w2.data() + static_cast<std::size_t>(c) * p.hidden;
    for (int j = 0; j < p.hidden; ++j)
      if (active[static_cast<std::size_t>(j)]) a += w[j] * h[static_cast<std::size_t>(j)];
    logits[static_cast<std::size_t>(c)] = a;
  }
}

void softmax_inplace(std::vector<double>& v) {
  double mx = v[0];
  for (double x : v) mx = std::max(mx, x);
  double sum = 0.0;
  for (auto& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : v) x /= sum;
}

}  // namespace

double evaluate_accuracy(const MlpParams& p,
                         const sim::ClassificationDataset& data,
                         const std::vector<int>& indices) {
  const std::size_t n = indices.empty() ? data.size() : indices.size();
  if (n == 0) return 0.0;
  // Sharded across samples; per-chunk hit counts are integers, so the
  // chunk-ordered sum is exact at every thread count.
  util::ThreadPool& pool = util::global_pool();
  const std::size_t grain = std::max<std::size_t>(
      64, (n + static_cast<std::size_t>(pool.size()) - 1) /
              static_cast<std::size_t>(pool.size()));
  const std::size_t chunks = util::ThreadPool::num_chunks(0, n, grain);
  std::vector<int> chunk_correct(chunks, 0);
  pool.parallel_for_chunks(
      0, n, grain, [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
        std::vector<bool> active(static_cast<std::size_t>(p.hidden), true);
        std::vector<double> h, logits;
        int correct = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t idx =
              indices.empty() ? i : static_cast<std::size_t>(indices[i]);
          forward_one(p, data.features[idx].data(), active, 32, h, logits);
          int best = 0;
          for (int c = 1; c < p.classes; ++c)
            if (logits[static_cast<std::size_t>(c)] >
                logits[static_cast<std::size_t>(best)])
              best = c;
          if (best == data.labels[idx]) ++correct;
        }
        chunk_correct[chunk] = correct;
      });
  int correct = 0;
  for (int c : chunk_correct) correct += c;
  return static_cast<double>(correct) / static_cast<double>(n);
}

double local_train(MlpParams& p, const sim::ClassificationDataset& data,
                   const std::vector<int>& shard,
                   const std::vector<bool>& active,
                   const PrecisionConfig& precision, int epochs, int batch,
                   double lr, Rng& rng) {
  S2A_TRACE_SCOPE_CAT("fed.local_train", "federated");
  S2A_CHECK(!shard.empty());
  S2A_CHECK(static_cast<int>(active.size()) == p.hidden);

  // Quantize weights in place once per round (weights are re-broadcast by
  // the server each round, so this models quantized local compute).
  if (precision.weight_bits < 32) {
    std::vector<double> w(p.w1.data(), p.w1.data() + p.w1.numel());
    fake_quantize(w, precision.weight_bits);
    std::copy(w.begin(), w.end(), p.w1.data());
    w.assign(p.w2.data(), p.w2.data() + p.w2.numel());
    fake_quantize(w, precision.weight_bits);
    std::copy(w.begin(), w.end(), p.w2.data());
  }

  int active_count = 0;
  for (bool a : active)
    if (a) ++active_count;

  std::vector<int> order = shard;
  std::vector<double> h, logits;
  double macs = 0.0;
  (void)batch;  // per-sample SGD: batch kept in the signature for clarity

  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (int idx : order) {
      const auto& x = data.features[static_cast<std::size_t>(idx)];
      const int y = data.labels[static_cast<std::size_t>(idx)];
      forward_one(p, x.data(), active, precision.activation_bits, h, logits);
      macs += 3.0 * static_cast<double>(mlp_macs(p, active_count));

      softmax_inplace(logits);
      std::vector<double> dlogits = logits;
      dlogits[static_cast<std::size_t>(y)] -= 1.0;
      if (precision.gradient_bits < 32)
        fake_quantize(dlogits, precision.gradient_bits);

      // Backward + SGD update.
      std::vector<double> dh(static_cast<std::size_t>(p.hidden), 0.0);
      for (int c = 0; c < p.classes; ++c) {
        double* w = p.w2.data() + static_cast<std::size_t>(c) * p.hidden;
        const double g = dlogits[static_cast<std::size_t>(c)];
        for (int j = 0; j < p.hidden; ++j) {
          if (!active[static_cast<std::size_t>(j)]) continue;
          dh[static_cast<std::size_t>(j)] += g * w[j];
          w[j] -= lr * g * h[static_cast<std::size_t>(j)];
        }
        p.b2[static_cast<std::size_t>(c)] -= lr * g;
      }
      if (precision.gradient_bits < 32)
        fake_quantize(dh, precision.gradient_bits);
      for (int j = 0; j < p.hidden; ++j) {
        if (!active[static_cast<std::size_t>(j)] ||
            h[static_cast<std::size_t>(j)] <= 0.0)
          continue;  // ReLU gate
        const double g = dh[static_cast<std::size_t>(j)];
        double* w = p.w1.data() + static_cast<std::size_t>(j) * p.in;
        for (int i = 0; i < p.in; ++i)
          w[i] -= lr * g * x[static_cast<std::size_t>(i)];
        p.b1[static_cast<std::size_t>(j)] -= lr * g;
      }
    }
  }
  return macs;
}

int select_width(const HardwareProfile& hw, const FlConfig& cfg,
                 std::size_t shard_size, int in, int classes) {
  int best = cfg.width_candidates.front();
  for (int w : cfg.width_candidates) {
    const double round_macs = static_cast<double>(cfg.local_epochs) *
                              static_cast<double>(shard_size) * 3.0 *
                              static_cast<double>(w) * (in + classes);
    const RoundCost cost = round_cost(round_macs, hw, PrecisionConfig{});
    if (cost.latency_s <= hw.latency_budget_s) best = std::max(best, w);
  }
  return best;
}

PrecisionConfig select_precision(const HardwareProfile& hw,
                                 const FlConfig& cfg, double round_macs) {
  // Candidates are cheapest-first; HaLo-FL wants the *most precise*
  // configuration that still meets both budgets (accuracy first, then
  // efficiency), so scan from the precise end.
  for (auto it = cfg.precision_candidates.rbegin();
       it != cfg.precision_candidates.rend(); ++it) {
    const RoundCost cost = round_cost(round_macs, hw, *it);
    if (cost.latency_s <= hw.latency_budget_s &&
        cost.energy_j <= hw.energy_budget_j)
      return *it;
  }
  return cfg.precision_candidates.front();  // nothing fits: cheapest
}

namespace {

/// Whether a client's update participates in this round's aggregation.
enum class ClientStatus {
  kOk = 0,      ///< responded in time; update eligible for aggregation
  kNoResponse,  ///< plan dropout: never computed, never responded
  kTimedOut,    ///< computed, but response missed the server deadline
};

}  // namespace

FlResult run_federated(FlStrategy strategy,
                       const sim::ClassificationDataset& train,
                       const sim::ClassificationDataset& test,
                       const std::vector<std::vector<int>>& shards,
                       const std::vector<HardwareProfile>& fleet,
                       const FlConfig& cfg, Rng& rng,
                       const fault::FaultPlan* faults) {
  S2A_CHECK(shards.size() == fleet.size());
  S2A_CHECK(cfg.client_timeout_s > 0.0);
  const int clients = static_cast<int>(shards.size());
  MlpParams global = init_mlp(train.feature_dim, cfg.hidden,
                              train.num_classes, rng);

  FlResult res;
  res.client_widths.assign(static_cast<std::size_t>(clients), cfg.hidden);
  res.client_precisions.assign(static_cast<std::size_t>(clients),
                               PrecisionConfig{});

  // Per-client adaptation decisions (stable across rounds).
  for (int c = 0; c < clients; ++c) {
    const auto& hw = fleet[static_cast<std::size_t>(c)];
    if (strategy == FlStrategy::kDcNas) {
      res.client_widths[static_cast<std::size_t>(c)] = select_width(
          hw, cfg, shards[static_cast<std::size_t>(c)].size(), train.feature_dim,
          train.num_classes);
    } else if (strategy == FlStrategy::kHaloFl) {
      const double round_macs =
          static_cast<double>(cfg.local_epochs) *
          static_cast<double>(shards[static_cast<std::size_t>(c)].size()) *
          3.0 * static_cast<double>(mlp_macs(global, cfg.hidden));
      res.client_precisions[static_cast<std::size_t>(c)] =
          select_precision(hw, cfg, round_macs);
    }
  }

  double total_area = 0.0;

  for (int round = 0; round < cfg.rounds; ++round) {
    S2A_TRACE_SCOPE_CAT("fed.round", "federated");
    S2A_COUNTER_ADD("fed.rounds", 1);

    // Client updates run on the shared pool. Determinism at every thread
    // count: per-client RNG streams are spawned serially in client order
    // (so the parent generator advances identically), each task reads
    // only `global`/config state and writes only its own slots, and every
    // reduction below is client-ordered on the calling thread.
    std::vector<Rng> client_rngs;
    client_rngs.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) client_rngs.push_back(rng.spawn());

    // Resolve this round's client faults up front — a pure lookup in the
    // plan, so the failure schedule is identical at every thread count.
    std::vector<ClientStatus> status(static_cast<std::size_t>(clients),
                                     ClientStatus::kOk);
    std::vector<double> latency_mult(static_cast<std::size_t>(clients), 1.0);
    std::vector<bool> corrupt(static_cast<std::size_t>(clients), false);
    if (faults != nullptr) {
      for (int c = 0; c < clients; ++c) {
        const fault::FaultEvent* ev = faults->client_fault_at(round, c);
        if (ev == nullptr) continue;
        switch (ev->kind) {
          case fault::FaultKind::kClientDropout:
            status[static_cast<std::size_t>(c)] = ClientStatus::kNoResponse;
            break;
          case fault::FaultKind::kClientStraggler:
            latency_mult[static_cast<std::size_t>(c)] = ev->magnitude;
            break;
          case fault::FaultKind::kClientCorrupt:
            corrupt[static_cast<std::size_t>(c)] = true;
            break;
          default:
            break;
        }
      }
    }

    std::vector<MlpParams> deltas(static_cast<std::size_t>(clients));
    std::vector<std::vector<bool>> masks(static_cast<std::size_t>(clients));
    std::vector<double> client_macs(static_cast<std::size_t>(clients), 0.0);

    util::global_pool().parallel_for(
        0, static_cast<std::size_t>(clients), 1, [&](std::size_t ci) {
          // A plan-dropped client never computes: no delta, no energy.
          if (status[ci] == ClientStatus::kNoResponse) return;
          S2A_TRACE_SCOPE_CAT("fed.client_update", "federated");
          MlpParams local = global;

          // Channel mask: DC-NAS keeps the top-w hidden units by ‖w1 row‖.
          std::vector<bool> active(static_cast<std::size_t>(cfg.hidden), true);
          const int width = res.client_widths[ci];
          if (strategy == FlStrategy::kDcNas && width < cfg.hidden) {
            std::vector<std::pair<double, int>> norms;
            for (int j = 0; j < cfg.hidden; ++j) {
              double n = 0.0;
              const double* w = global.w1.data() + static_cast<std::size_t>(j) * global.in;
              for (int i = 0; i < global.in; ++i) n += w[i] * w[i];
              norms.push_back({n, j});
            }
            std::sort(norms.begin(), norms.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });
            active.assign(static_cast<std::size_t>(cfg.hidden), false);
            for (int k = 0; k < width; ++k)
              active[static_cast<std::size_t>(norms[static_cast<std::size_t>(k)].second)] = true;
          }

          client_macs[ci] =
              local_train(local, train, shards[ci], active,
                          res.client_precisions[ci], cfg.local_epochs,
                          cfg.batch, cfg.lr, client_rngs[ci]);

          // Ship the update as a delta against the broadcast weights
          // (what a bandwidth-frugal client would transmit). Units this
          // client never trained are untouched, so their delta is an
          // exact 0 and drops out of the masked aggregation below.
          for (std::size_t i = 0; i < local.w1.numel(); ++i)
            local.w1[i] -= global.w1[i];
          for (std::size_t i = 0; i < local.b1.numel(); ++i)
            local.b1[i] -= global.b1[i];
          for (std::size_t i = 0; i < local.w2.numel(); ++i)
            local.w2[i] -= global.w2[i];
          for (std::size_t i = 0; i < local.b2.numel(); ++i)
            local.b2[i] -= global.b2[i];
          // An injected transmission corruption: the update arrives with
          // a poisoned payload, which the server-side finite check below
          // must quarantine before it can touch the global model.
          if (corrupt[ci] && local.w1.numel() > 0)
            local.w1[0] = std::numeric_limits<double>::quiet_NaN();
          deltas[ci] = std::move(local);
          masks[ci] = std::move(active);
        });

    // Cost accounting, serial and client-ordered so the float sums are
    // identical at every thread count. Plan-dropped clients cost nothing
    // (they never ran); stragglers burn their energy even when the
    // server stops waiting for them, and the server's wait for a
    // timed-out client is capped at exactly the deadline.
    double round_latency = 0.0;
    for (int c = 0; c < clients; ++c) {
      if (status[static_cast<std::size_t>(c)] == ClientStatus::kNoResponse)
        continue;
      const double model_fraction =
          static_cast<double>(res.client_widths[static_cast<std::size_t>(c)]) /
          cfg.hidden;
      const RoundCost cost =
          round_cost(client_macs[static_cast<std::size_t>(c)],
                     fleet[static_cast<std::size_t>(c)],
                     res.client_precisions[static_cast<std::size_t>(c)],
                     model_fraction);
      res.total_energy_j += cost.energy_j;
      const double latency =
          cost.latency_s * latency_mult[static_cast<std::size_t>(c)];
      if (latency > cfg.client_timeout_s)
        status[static_cast<std::size_t>(c)] = ClientStatus::kTimedOut;
      round_latency =
          std::max(round_latency, std::min(latency, cfg.client_timeout_s));
      total_area += cost.area_mm2;
    }
    res.total_latency_s += round_latency;
    S2A_HISTOGRAM_RECORD("fed.round_latency_s", round_latency);

    {
      // Mask-aware weighted aggregation, in place on `global`: the
      // batched deltas are accumulated client-ordered into one scratch
      // set and applied once, instead of averaging full per-client
      // parameter copies. Units no client trained keep their zero
      // aggregate weight and are left untouched. Only the surviving
      // client set participates — dropped and timed-out clients are
      // skipped, and any delta carrying a non-finite value is
      // quarantined here, at the server boundary. The iteration stays
      // client-ordered, so the surviving aggregation is bit-identical
      // at every thread count.
      S2A_TRACE_SCOPE_CAT("fed.aggregate", "federated");
      MlpParams agg = global;
      agg.w1.fill(0.0);
      agg.b1.fill(0.0);
      agg.w2.fill(0.0);
      agg.b2.fill(0.0);
      std::vector<double> unit_weight(static_cast<std::size_t>(cfg.hidden), 0.0);
      std::vector<bool> aggregated(static_cast<std::size_t>(clients), false);
      double round_weight = 0.0;
      int survivors = 0;
      for (int c = 0; c < clients; ++c) {
        if (status[static_cast<std::size_t>(c)] != ClientStatus::kOk) {
          ++res.dropped_client_rounds;
          S2A_COUNTER_ADD("fed.client_dropouts", 1);
          continue;
        }
        const auto& d = deltas[static_cast<std::size_t>(c)];
        if (!util::all_finite(d.w1.data(), d.w1.numel()) ||
            !util::all_finite(d.b1.data(), d.b1.numel()) ||
            !util::all_finite(d.w2.data(), d.w2.numel()) ||
            !util::all_finite(d.b2.data(), d.b2.numel())) {
          ++res.nonfinite_deltas;
          S2A_COUNTER_ADD("fed.nonfinite_deltas", 1);
          continue;
        }
        aggregated[static_cast<std::size_t>(c)] = true;
        ++survivors;
        round_weight +=
            static_cast<double>(shards[static_cast<std::size_t>(c)].size());
      }
      res.survivors_per_round.push_back(survivors);
      S2A_GAUGE_SET("fed.round_survivors", survivors);
      for (int c = 0; c < clients; ++c) {
        if (!aggregated[static_cast<std::size_t>(c)]) continue;
        const auto& d = deltas[static_cast<std::size_t>(c)];
        const double wgt = static_cast<double>(shards[static_cast<std::size_t>(c)].size());
        for (int j = 0; j < cfg.hidden; ++j) {
          if (!masks[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)]) continue;
          unit_weight[static_cast<std::size_t>(j)] += wgt;
          for (int i = 0; i < global.in; ++i)
            agg.w1[static_cast<std::size_t>(j) * global.in + i] +=
                wgt * d.w1[static_cast<std::size_t>(j) * global.in + i];
          agg.b1[static_cast<std::size_t>(j)] += wgt * d.b1[static_cast<std::size_t>(j)];
          for (int k = 0; k < global.classes; ++k)
            agg.w2[static_cast<std::size_t>(k) * global.hidden + j] +=
                wgt * d.w2[static_cast<std::size_t>(k) * global.hidden + j];
        }
        for (int k = 0; k < global.classes; ++k)
          agg.b2[static_cast<std::size_t>(k)] += wgt * d.b2[static_cast<std::size_t>(k)];
      }
      for (int j = 0; j < cfg.hidden; ++j) {
        const double uw = unit_weight[static_cast<std::size_t>(j)];
        if (uw == 0.0) continue;  // no client trained this unit: keep global
        for (int i = 0; i < global.in; ++i)
          global.w1[static_cast<std::size_t>(j) * global.in + i] +=
              agg.w1[static_cast<std::size_t>(j) * global.in + i] / uw;
        global.b1[static_cast<std::size_t>(j)] += agg.b1[static_cast<std::size_t>(j)] / uw;
        for (int k = 0; k < global.classes; ++k)
          global.w2[static_cast<std::size_t>(k) * global.hidden + j] +=
              agg.w2[static_cast<std::size_t>(k) * global.hidden + j] / uw;
      }
      // A round that lost every client leaves the global model untouched.
      if (round_weight > 0.0)
        for (int k = 0; k < global.classes; ++k)
          global.b2[static_cast<std::size_t>(k)] +=
              agg.b2[static_cast<std::size_t>(k)] / round_weight;
    }

    {
      S2A_TRACE_SCOPE_CAT("fed.evaluate", "federated");
      res.accuracy_per_round.push_back(evaluate_accuracy(global, test));
    }
  }

  res.final_accuracy = res.accuracy_per_round.back();
  res.mean_area_mm2 = total_area / (static_cast<double>(clients) * cfg.rounds);
  return res;
}

}  // namespace s2a::federated
