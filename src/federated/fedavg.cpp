#include "federated/fedavg.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::federated {

const char* strategy_name(FlStrategy s) {
  switch (s) {
    case FlStrategy::kStaticFl:
      return "Static FL";
    case FlStrategy::kDcNas:
      return "DC-NAS";
    case FlStrategy::kHaloFl:
      return "HaLo-FL";
  }
  return "?";
}

MlpParams init_mlp(int in, int hidden, int classes, Rng& rng) {
  S2A_CHECK(in > 0 && hidden > 0 && classes > 1);
  MlpParams p;
  p.in = in;
  p.hidden = hidden;
  p.classes = classes;
  p.w1 = nn::Tensor::xavier(hidden, in, rng);
  p.b1 = nn::Tensor({hidden});
  p.w2 = nn::Tensor::xavier(classes, hidden, rng);
  p.b2 = nn::Tensor({classes});
  return p;
}

std::size_t mlp_macs(const MlpParams& p, int active_hidden) {
  return static_cast<std::size_t>(active_hidden) * (p.in + p.classes);
}

namespace {

// Forward for one sample; h and logits are outputs. Applies activation
// quantization when bits < 32.
void forward_one(const MlpParams& p, const double* x,
                 const std::vector<bool>& active, int act_bits,
                 std::vector<double>& h, std::vector<double>& logits) {
  h.assign(static_cast<std::size_t>(p.hidden), 0.0);
  double act_scale = 0.0;
  for (int j = 0; j < p.hidden; ++j) {
    if (!active[static_cast<std::size_t>(j)]) continue;
    double a = p.b1[static_cast<std::size_t>(j)];
    const double* w = p.w1.data() + static_cast<std::size_t>(j) * p.in;
    for (int i = 0; i < p.in; ++i) a += w[i] * x[i];
    h[static_cast<std::size_t>(j)] = a > 0.0 ? a : 0.0;  // ReLU
    act_scale = std::max(act_scale, std::abs(h[static_cast<std::size_t>(j)]));
  }
  if (act_bits < 32 && act_scale > 0.0)
    for (auto& v : h) v = quantize_value(v, act_scale, act_bits);

  logits.assign(static_cast<std::size_t>(p.classes), 0.0);
  for (int c = 0; c < p.classes; ++c) {
    double a = p.b2[static_cast<std::size_t>(c)];
    const double* w = p.w2.data() + static_cast<std::size_t>(c) * p.hidden;
    for (int j = 0; j < p.hidden; ++j)
      if (active[static_cast<std::size_t>(j)]) a += w[j] * h[static_cast<std::size_t>(j)];
    logits[static_cast<std::size_t>(c)] = a;
  }
}

void softmax_inplace(std::vector<double>& v) {
  double mx = v[0];
  for (double x : v) mx = std::max(mx, x);
  double sum = 0.0;
  for (auto& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : v) x /= sum;
}

}  // namespace

double evaluate_accuracy(const MlpParams& p,
                         const sim::ClassificationDataset& data,
                         const std::vector<int>& indices) {
  std::vector<bool> active(static_cast<std::size_t>(p.hidden), true);
  std::vector<double> h, logits;
  int correct = 0, total = 0;
  auto eval_one = [&](std::size_t i) {
    forward_one(p, data.features[i].data(), active, 32, h, logits);
    int best = 0;
    for (int c = 1; c < p.classes; ++c)
      if (logits[static_cast<std::size_t>(c)] > logits[static_cast<std::size_t>(best)])
        best = c;
    if (best == data.labels[i]) ++correct;
    ++total;
  };
  if (indices.empty())
    for (std::size_t i = 0; i < data.size(); ++i) eval_one(i);
  else
    for (int i : indices) eval_one(static_cast<std::size_t>(i));
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

double local_train(MlpParams& p, const sim::ClassificationDataset& data,
                   const std::vector<int>& shard,
                   const std::vector<bool>& active,
                   const PrecisionConfig& precision, int epochs, int batch,
                   double lr, Rng& rng) {
  S2A_CHECK(!shard.empty());
  S2A_CHECK(static_cast<int>(active.size()) == p.hidden);

  // Quantize weights in place once per round (weights are re-broadcast by
  // the server each round, so this models quantized local compute).
  if (precision.weight_bits < 32) {
    std::vector<double> w(p.w1.data(), p.w1.data() + p.w1.numel());
    fake_quantize(w, precision.weight_bits);
    std::copy(w.begin(), w.end(), p.w1.data());
    w.assign(p.w2.data(), p.w2.data() + p.w2.numel());
    fake_quantize(w, precision.weight_bits);
    std::copy(w.begin(), w.end(), p.w2.data());
  }

  int active_count = 0;
  for (bool a : active)
    if (a) ++active_count;

  std::vector<int> order = shard;
  std::vector<double> h, logits;
  double macs = 0.0;
  (void)batch;  // per-sample SGD: batch kept in the signature for clarity

  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (int idx : order) {
      const auto& x = data.features[static_cast<std::size_t>(idx)];
      const int y = data.labels[static_cast<std::size_t>(idx)];
      forward_one(p, x.data(), active, precision.activation_bits, h, logits);
      macs += 3.0 * static_cast<double>(mlp_macs(p, active_count));

      softmax_inplace(logits);
      std::vector<double> dlogits = logits;
      dlogits[static_cast<std::size_t>(y)] -= 1.0;
      if (precision.gradient_bits < 32)
        fake_quantize(dlogits, precision.gradient_bits);

      // Backward + SGD update.
      std::vector<double> dh(static_cast<std::size_t>(p.hidden), 0.0);
      for (int c = 0; c < p.classes; ++c) {
        double* w = p.w2.data() + static_cast<std::size_t>(c) * p.hidden;
        const double g = dlogits[static_cast<std::size_t>(c)];
        for (int j = 0; j < p.hidden; ++j) {
          if (!active[static_cast<std::size_t>(j)]) continue;
          dh[static_cast<std::size_t>(j)] += g * w[j];
          w[j] -= lr * g * h[static_cast<std::size_t>(j)];
        }
        p.b2[static_cast<std::size_t>(c)] -= lr * g;
      }
      if (precision.gradient_bits < 32)
        fake_quantize(dh, precision.gradient_bits);
      for (int j = 0; j < p.hidden; ++j) {
        if (!active[static_cast<std::size_t>(j)] ||
            h[static_cast<std::size_t>(j)] <= 0.0)
          continue;  // ReLU gate
        const double g = dh[static_cast<std::size_t>(j)];
        double* w = p.w1.data() + static_cast<std::size_t>(j) * p.in;
        for (int i = 0; i < p.in; ++i)
          w[i] -= lr * g * x[static_cast<std::size_t>(i)];
        p.b1[static_cast<std::size_t>(j)] -= lr * g;
      }
    }
  }
  return macs;
}

int select_width(const HardwareProfile& hw, const FlConfig& cfg,
                 std::size_t shard_size, int in, int classes) {
  int best = cfg.width_candidates.front();
  for (int w : cfg.width_candidates) {
    const double round_macs = static_cast<double>(cfg.local_epochs) *
                              static_cast<double>(shard_size) * 3.0 *
                              static_cast<double>(w) * (in + classes);
    const RoundCost cost = round_cost(round_macs, hw, PrecisionConfig{});
    if (cost.latency_s <= hw.latency_budget_s) best = std::max(best, w);
  }
  return best;
}

PrecisionConfig select_precision(const HardwareProfile& hw,
                                 const FlConfig& cfg, double round_macs) {
  // Candidates are cheapest-first; HaLo-FL wants the *most precise*
  // configuration that still meets both budgets (accuracy first, then
  // efficiency), so scan from the precise end.
  for (auto it = cfg.precision_candidates.rbegin();
       it != cfg.precision_candidates.rend(); ++it) {
    const RoundCost cost = round_cost(round_macs, hw, *it);
    if (cost.latency_s <= hw.latency_budget_s &&
        cost.energy_j <= hw.energy_budget_j)
      return *it;
  }
  return cfg.precision_candidates.front();  // nothing fits: cheapest
}

FlResult run_federated(FlStrategy strategy,
                       const sim::ClassificationDataset& train,
                       const sim::ClassificationDataset& test,
                       const std::vector<std::vector<int>>& shards,
                       const std::vector<HardwareProfile>& fleet,
                       const FlConfig& cfg, Rng& rng) {
  S2A_CHECK(shards.size() == fleet.size());
  const int clients = static_cast<int>(shards.size());
  MlpParams global = init_mlp(train.feature_dim, cfg.hidden,
                              train.num_classes, rng);

  FlResult res;
  res.client_widths.assign(static_cast<std::size_t>(clients), cfg.hidden);
  res.client_precisions.assign(static_cast<std::size_t>(clients),
                               PrecisionConfig{});

  // Per-client adaptation decisions (stable across rounds).
  for (int c = 0; c < clients; ++c) {
    const auto& hw = fleet[static_cast<std::size_t>(c)];
    if (strategy == FlStrategy::kDcNas) {
      res.client_widths[static_cast<std::size_t>(c)] = select_width(
          hw, cfg, shards[static_cast<std::size_t>(c)].size(), train.feature_dim,
          train.num_classes);
    } else if (strategy == FlStrategy::kHaloFl) {
      const double round_macs =
          static_cast<double>(cfg.local_epochs) *
          static_cast<double>(shards[static_cast<std::size_t>(c)].size()) *
          3.0 * static_cast<double>(mlp_macs(global, cfg.hidden));
      res.client_precisions[static_cast<std::size_t>(c)] =
          select_precision(hw, cfg, round_macs);
    }
  }

  double total_area = 0.0;
  for (int round = 0; round < cfg.rounds; ++round) {
    S2A_TRACE_SCOPE_CAT("fed.round", "federated");
    S2A_COUNTER_ADD("fed.rounds", 1);
    std::vector<MlpParams> locals;
    std::vector<std::vector<bool>> masks;
    double round_latency = 0.0;

    for (int c = 0; c < clients; ++c) {
      S2A_TRACE_SCOPE_CAT("fed.client_update", "federated");
      const auto& hw = fleet[static_cast<std::size_t>(c)];
      MlpParams local = global;

      // Channel mask: DC-NAS keeps the top-w hidden units by ‖w1 row‖.
      std::vector<bool> active(static_cast<std::size_t>(cfg.hidden), true);
      const int width = res.client_widths[static_cast<std::size_t>(c)];
      if (strategy == FlStrategy::kDcNas && width < cfg.hidden) {
        std::vector<std::pair<double, int>> norms;
        for (int j = 0; j < cfg.hidden; ++j) {
          double n = 0.0;
          const double* w = global.w1.data() + static_cast<std::size_t>(j) * global.in;
          for (int i = 0; i < global.in; ++i) n += w[i] * w[i];
          norms.push_back({n, j});
        }
        std::sort(norms.begin(), norms.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        active.assign(static_cast<std::size_t>(cfg.hidden), false);
        for (int k = 0; k < width; ++k)
          active[static_cast<std::size_t>(norms[static_cast<std::size_t>(k)].second)] = true;
      }

      const PrecisionConfig precision =
          res.client_precisions[static_cast<std::size_t>(c)];
      Rng client_rng = rng.spawn();
      const double macs =
          local_train(local, train, shards[static_cast<std::size_t>(c)], active,
                      precision, cfg.local_epochs, cfg.batch, cfg.lr, client_rng);

      const double model_fraction =
          static_cast<double>(width) / cfg.hidden;
      const RoundCost cost = round_cost(macs, hw, precision, model_fraction);
      res.total_energy_j += cost.energy_j;
      round_latency = std::max(round_latency, cost.latency_s);
      total_area += cost.area_mm2;

      locals.push_back(std::move(local));
      masks.push_back(std::move(active));
    }
    res.total_latency_s += round_latency;
    S2A_HISTOGRAM_RECORD("fed.round_latency_s", round_latency);

    {
      // Mask-aware weighted aggregation.
      S2A_TRACE_SCOPE_CAT("fed.aggregate", "federated");
      MlpParams next = global;
      next.w1.fill(0.0);
      next.b1.fill(0.0);
      next.w2.fill(0.0);
      next.b2.fill(0.0);
      std::vector<double> unit_weight(static_cast<std::size_t>(cfg.hidden), 0.0);
      double total_weight = 0.0;
      for (int c = 0; c < clients; ++c) {
        const double wgt = static_cast<double>(shards[static_cast<std::size_t>(c)].size());
        total_weight += wgt;
        for (int j = 0; j < cfg.hidden; ++j) {
          if (!masks[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)]) continue;
          unit_weight[static_cast<std::size_t>(j)] += wgt;
          const auto& l = locals[static_cast<std::size_t>(c)];
          for (int i = 0; i < global.in; ++i)
            next.w1[static_cast<std::size_t>(j) * global.in + i] +=
                wgt * l.w1[static_cast<std::size_t>(j) * global.in + i];
          next.b1[static_cast<std::size_t>(j)] += wgt * l.b1[static_cast<std::size_t>(j)];
          for (int k = 0; k < global.classes; ++k)
            next.w2[static_cast<std::size_t>(k) * global.hidden + j] +=
                wgt * l.w2[static_cast<std::size_t>(k) * global.hidden + j];
        }
        for (int k = 0; k < global.classes; ++k)
          next.b2[static_cast<std::size_t>(k)] +=
              wgt * locals[static_cast<std::size_t>(c)].b2[static_cast<std::size_t>(k)];
      }
      for (int j = 0; j < cfg.hidden; ++j) {
        const double uw = unit_weight[static_cast<std::size_t>(j)];
        if (uw == 0.0) {
          // No client trained this unit this round: keep the global value.
          for (int i = 0; i < global.in; ++i)
            next.w1[static_cast<std::size_t>(j) * global.in + i] =
                global.w1[static_cast<std::size_t>(j) * global.in + i];
          next.b1[static_cast<std::size_t>(j)] = global.b1[static_cast<std::size_t>(j)];
          for (int k = 0; k < global.classes; ++k)
            next.w2[static_cast<std::size_t>(k) * global.hidden + j] =
                global.w2[static_cast<std::size_t>(k) * global.hidden + j];
          continue;
        }
        for (int i = 0; i < global.in; ++i)
          next.w1[static_cast<std::size_t>(j) * global.in + i] /= uw;
        next.b1[static_cast<std::size_t>(j)] /= uw;
        for (int k = 0; k < global.classes; ++k)
          next.w2[static_cast<std::size_t>(k) * global.hidden + j] /= uw;
      }
      for (int k = 0; k < global.classes; ++k)
        next.b2[static_cast<std::size_t>(k)] /= total_weight;
      global = std::move(next);
    }

    {
      S2A_TRACE_SCOPE_CAT("fed.evaluate", "federated");
      res.accuracy_per_round.push_back(evaluate_accuracy(global, test));
    }
  }

  res.final_accuracy = res.accuracy_per_round.back();
  res.mean_area_mm2 = total_area / (static_cast<double>(clients) * cfg.rounds);
  return res;
}

}  // namespace s2a::federated
