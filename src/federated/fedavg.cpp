#include "federated/fedavg.hpp"

#include <algorithm>
#include <cmath>

#include "federated/hierarchy.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace s2a::federated {

const char* strategy_name(FlStrategy s) {
  switch (s) {
    case FlStrategy::kStaticFl:
      return "Static FL";
    case FlStrategy::kDcNas:
      return "DC-NAS";
    case FlStrategy::kHaloFl:
      return "HaLo-FL";
  }
  return "?";
}

MlpParams init_mlp(int in, int hidden, int classes, Rng& rng) {
  S2A_CHECK(in > 0 && hidden > 0 && classes > 1);
  MlpParams p;
  p.in = in;
  p.hidden = hidden;
  p.classes = classes;
  p.w1 = nn::Tensor::xavier(hidden, in, rng);
  p.b1 = nn::Tensor({hidden});
  p.w2 = nn::Tensor::xavier(classes, hidden, rng);
  p.b2 = nn::Tensor({classes});
  return p;
}

std::size_t mlp_macs(const MlpParams& p, int active_hidden) {
  return static_cast<std::size_t>(active_hidden) * (p.in + p.classes);
}

namespace {

// Forward for one sample; h and logits are outputs. Applies activation
// quantization when bits < 32.
void forward_one(const MlpParams& p, const double* x,
                 const std::vector<bool>& active, int act_bits,
                 std::vector<double>& h, std::vector<double>& logits) {
  h.assign(static_cast<std::size_t>(p.hidden), 0.0);
  double act_scale = 0.0;
  for (int j = 0; j < p.hidden; ++j) {
    if (!active[static_cast<std::size_t>(j)]) continue;
    double a = p.b1[static_cast<std::size_t>(j)];
    const double* w = p.w1.data() + static_cast<std::size_t>(j) * p.in;
    for (int i = 0; i < p.in; ++i) a += w[i] * x[i];
    h[static_cast<std::size_t>(j)] = a > 0.0 ? a : 0.0;  // ReLU
    act_scale = std::max(act_scale, std::abs(h[static_cast<std::size_t>(j)]));
  }
  if (act_bits < 32 && act_scale > 0.0)
    for (auto& v : h) v = quantize_value(v, act_scale, act_bits);

  logits.assign(static_cast<std::size_t>(p.classes), 0.0);
  for (int c = 0; c < p.classes; ++c) {
    double a = p.b2[static_cast<std::size_t>(c)];
    const double* w = p.w2.data() + static_cast<std::size_t>(c) * p.hidden;
    for (int j = 0; j < p.hidden; ++j)
      if (active[static_cast<std::size_t>(j)]) a += w[j] * h[static_cast<std::size_t>(j)];
    logits[static_cast<std::size_t>(c)] = a;
  }
}

void softmax_inplace(std::vector<double>& v) {
  double mx = v[0];
  for (double x : v) mx = std::max(mx, x);
  double sum = 0.0;
  for (auto& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : v) x /= sum;
}

}  // namespace

double evaluate_accuracy(const MlpParams& p,
                         const sim::ClassificationDataset& data,
                         const std::vector<int>& indices) {
  const std::size_t n = indices.empty() ? data.size() : indices.size();
  if (n == 0) return 0.0;
  // Sharded across samples; per-chunk hit counts are integers, so the
  // chunk-ordered sum is exact at every thread count.
  util::ThreadPool& pool = util::global_pool();
  const std::size_t grain = std::max<std::size_t>(
      64, (n + static_cast<std::size_t>(pool.size()) - 1) /
              static_cast<std::size_t>(pool.size()));
  const std::size_t chunks = util::ThreadPool::num_chunks(0, n, grain);
  std::vector<int> chunk_correct(chunks, 0);
  pool.parallel_for_chunks(
      0, n, grain, [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
        std::vector<bool> active(static_cast<std::size_t>(p.hidden), true);
        std::vector<double> h, logits;
        int correct = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t idx =
              indices.empty() ? i : static_cast<std::size_t>(indices[i]);
          forward_one(p, data.features[idx].data(), active, 32, h, logits);
          int best = 0;
          for (int c = 1; c < p.classes; ++c)
            if (logits[static_cast<std::size_t>(c)] >
                logits[static_cast<std::size_t>(best)])
              best = c;
          if (best == data.labels[idx]) ++correct;
        }
        chunk_correct[chunk] = correct;
      });
  int correct = 0;
  for (int c : chunk_correct) correct += c;
  return static_cast<double>(correct) / static_cast<double>(n);
}

double local_train(MlpParams& p, const sim::ClassificationDataset& data,
                   const std::vector<int>& shard,
                   const std::vector<bool>& active,
                   const PrecisionConfig& precision, int epochs, int batch,
                   double lr, Rng& rng) {
  S2A_TRACE_SCOPE_CAT("fed.local_train", "federated");
  S2A_CHECK(!shard.empty());
  S2A_CHECK(static_cast<int>(active.size()) == p.hidden);

  // Quantize weights in place once per round (weights are re-broadcast by
  // the server each round, so this models quantized local compute).
  if (precision.weight_bits < 32) {
    std::vector<double> w(p.w1.data(), p.w1.data() + p.w1.numel());
    fake_quantize(w, precision.weight_bits);
    std::copy(w.begin(), w.end(), p.w1.data());
    w.assign(p.w2.data(), p.w2.data() + p.w2.numel());
    fake_quantize(w, precision.weight_bits);
    std::copy(w.begin(), w.end(), p.w2.data());
  }

  int active_count = 0;
  for (bool a : active)
    if (a) ++active_count;

  std::vector<int> order = shard;
  std::vector<double> h, logits;
  double macs = 0.0;
  (void)batch;  // per-sample SGD: batch kept in the signature for clarity

  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (int idx : order) {
      const auto& x = data.features[static_cast<std::size_t>(idx)];
      const int y = data.labels[static_cast<std::size_t>(idx)];
      forward_one(p, x.data(), active, precision.activation_bits, h, logits);
      macs += 3.0 * static_cast<double>(mlp_macs(p, active_count));

      softmax_inplace(logits);
      std::vector<double> dlogits = logits;
      dlogits[static_cast<std::size_t>(y)] -= 1.0;
      if (precision.gradient_bits < 32)
        fake_quantize(dlogits, precision.gradient_bits);

      // Backward + SGD update.
      std::vector<double> dh(static_cast<std::size_t>(p.hidden), 0.0);
      for (int c = 0; c < p.classes; ++c) {
        double* w = p.w2.data() + static_cast<std::size_t>(c) * p.hidden;
        const double g = dlogits[static_cast<std::size_t>(c)];
        for (int j = 0; j < p.hidden; ++j) {
          if (!active[static_cast<std::size_t>(j)]) continue;
          dh[static_cast<std::size_t>(j)] += g * w[j];
          w[j] -= lr * g * h[static_cast<std::size_t>(j)];
        }
        p.b2[static_cast<std::size_t>(c)] -= lr * g;
      }
      if (precision.gradient_bits < 32)
        fake_quantize(dh, precision.gradient_bits);
      for (int j = 0; j < p.hidden; ++j) {
        if (!active[static_cast<std::size_t>(j)] ||
            h[static_cast<std::size_t>(j)] <= 0.0)
          continue;  // ReLU gate
        const double g = dh[static_cast<std::size_t>(j)];
        double* w = p.w1.data() + static_cast<std::size_t>(j) * p.in;
        for (int i = 0; i < p.in; ++i)
          w[i] -= lr * g * x[static_cast<std::size_t>(i)];
        p.b1[static_cast<std::size_t>(j)] -= lr * g;
      }
    }
  }
  return macs;
}

int select_width(const HardwareProfile& hw, const FlConfig& cfg,
                 std::size_t shard_size, int in, int classes) {
  int best = cfg.width_candidates.front();
  for (int w : cfg.width_candidates) {
    const double round_macs = static_cast<double>(cfg.local_epochs) *
                              static_cast<double>(shard_size) * 3.0 *
                              static_cast<double>(w) * (in + classes);
    const RoundCost cost = round_cost(round_macs, hw, PrecisionConfig{});
    if (cost.latency_s <= hw.latency_budget_s) best = std::max(best, w);
  }
  return best;
}

PrecisionConfig select_precision(const HardwareProfile& hw,
                                 const FlConfig& cfg, double round_macs) {
  // Candidates are cheapest-first; HaLo-FL wants the *most precise*
  // configuration that still meets both budgets (accuracy first, then
  // efficiency), so scan from the precise end.
  for (auto it = cfg.precision_candidates.rbegin();
       it != cfg.precision_candidates.rend(); ++it) {
    const RoundCost cost = round_cost(round_macs, hw, *it);
    if (cost.latency_s <= hw.latency_budget_s &&
        cost.energy_j <= hw.energy_budget_j)
      return *it;
  }
  return cfg.precision_candidates.front();  // nothing fits: cheapest
}

FlResult run_federated(FlStrategy strategy,
                       const sim::ClassificationDataset& train,
                       const sim::ClassificationDataset& test,
                       const std::vector<std::vector<int>>& shards,
                       const std::vector<HardwareProfile>& fleet,
                       const FlConfig& cfg, Rng& rng,
                       const fault::FaultPlan* faults) {
  // The flat server is the degenerate tree: one edge holding the whole
  // fleet, one region, everyone sampled, dense updates. The hierarchical
  // engine's fixed-point aggregation is shape-invariant, so this wrapper
  // is bit-identical to any deeper topology over the same participant
  // set (tests/federated_hier_test.cpp) — one aggregation implementation
  // serves both paths.
  HierConfig hier;
  hier.fl = cfg;
  hier.clients_per_edge = std::max<int>(1, static_cast<int>(shards.size()));
  hier.edges_per_region = 1;
  return run_federated_hier(strategy, train, test, shards, fleet, hier, rng,
                            faults)
      .fl;
}

}  // namespace s2a::federated
