// Hierarchical, streaming, memory-bounded federated aggregation
// (Sec. VII at fleet scale; docs/ARCHITECTURE.md "Hierarchical federated
// scaling").
//
// Clients are grouped into edge aggregators, edges into regions, regions
// into the global server. Every level performs streaming in-place delta
// reduction: a client's delta is folded into its edge accumulator the
// moment local training finishes and the buffer is immediately reused,
// so peak aggregator memory is O(levels + threads) model-sized buffers —
// never O(clients).
//
// The reduction is performed in Q32.32 fixed point (__int128
// accumulators of llround(2^32 * weighted-delta) terms). Integer
// addition is associative, so the aggregate is bit-identical for every
// tree shape, chunking, thread count, and client completion order —
// which is exactly why the flat run_federated (fedavg.hpp) can delegate
// to this engine with a one-edge topology and stay bit-identical to a
// deep tree over the same participant set.
//
// On top of the tree:
//  * seeded per-round client sampling (uniform or weighted by shard
//    size) with survivor-renormalized aggregation;
//  * sparse top-k delta compression with per-client error-feedback
//    residuals (compress.hpp), billed through the s2a::net link cost
//    model when `bill_uplink` is set;
//  * the timeout-drop / NaN-quarantine fault machinery at every level:
//    FlConfig::client_timeout_s is the per-client deadline applied by
//    each edge aggregator, `edge_timeout_s` bounds how long a region
//    waits for an edge aggregate, and a poisoned edge or region
//    aggregate is quarantined exactly like a poisoned client delta
//    (docs/RESILIENCE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "fault/fault.hpp"
#include "federated/fedavg.hpp"
#include "net/link.hpp"

namespace s2a::federated {

/// Per-round cohort selection policy.
enum class SampleMode {
  kAll = 0,          ///< every client trains every round
  kUniform,          ///< uniform sampling without replacement
  kWeightedByShard,  ///< inclusion probability proportional to shard size
};
const char* sample_mode_name(SampleMode mode);

struct HierConfig {
  FlConfig fl;  ///< rounds / training / client deadline (applied per edge)

  /// Tree shape: clients are assigned to edges in contiguous id ranges,
  /// edges to regions likewise. A one-edge, one-region tree is the flat
  /// server run_federated models.
  int clients_per_edge = 64;
  int edges_per_region = 32;

  /// Per-round sampling. The cohort is drawn serially from a stream
  /// derived from the server Rng's round seed, so it is identical at
  /// every thread count; sample_fraction 1.0 (or kAll) trains everyone.
  SampleMode sample_mode = SampleMode::kAll;
  double sample_fraction = 1.0;

  /// Top-k compression of client deltas: fraction of (eligible) delta
  /// entries shipped; 1.0 disables compression. With error_feedback the
  /// unsent remainder is carried per client to its next participating
  /// round. Residuals model client-resident state and are excluded from
  /// the aggregator-memory accounting (they live on the devices).
  double topk_fraction = 1.0;
  bool error_feedback = true;

  /// Deadline a region applies to each of its edge aggregates (and the
  /// global server to each region): an edge whose slowest surviving
  /// client (plus any injected edge straggler factor) exceeds this is
  /// dropped wholesale; the region waits out exactly the deadline.
  double edge_timeout_s = std::numeric_limits<double>::infinity();

  /// When set, client->edge wire bytes (dense or compressed) are billed
  /// through the net link cost model below: the serialization +
  /// propagation time of the update is added to the client's round
  /// latency before the per-edge deadline check, so compression buys
  /// participation under constrained uplinks.
  bool bill_uplink = false;
  net::LinkConfig uplink{};

  /// Fault plans for the upper levels, using the client fault kinds
  /// with `target` = edge id / region id: kClientDropout drops the
  /// aggregate, kClientStraggler multiplies its latency (against
  /// edge_timeout_s), kClientCorrupt poisons it so the level above
  /// quarantines it. Client-level faults arrive via the run call's
  /// FaultPlan parameter, exactly as in flat run_federated.
  fault::FaultPlan edge_faults{};
  fault::FaultPlan region_faults{};
};

/// Hierarchy-specific accounting, alongside the embedded FlResult.
struct HierStats {
  int edges = 0;    ///< tree width at the edge level
  int regions = 0;  ///< tree width at the region level

  long sampled_client_rounds = 0;  ///< cohort sizes summed over rounds
  /// Edge aggregates lost to plan dropouts or the edge_timeout_s
  /// deadline, and edge aggregates quarantined as poisoned. Clients
  /// whose surviving updates were inside a lost edge are added to
  /// FlResult::dropped_client_rounds (the counter sums losses across
  /// levels).
  long dropped_edge_rounds = 0;
  long quarantined_edges = 0;
  long dropped_region_rounds = 0;
  long quarantined_regions = 0;

  /// Modeled wire traffic: client->edge updates (sparse or dense) plus
  /// edge->region and region->global fixed-point aggregates. Traffic on
  /// paths that die before the global apply (dropped edges/regions, lost
  /// clients) is not billed.
  double bytes_on_wire = 0.0;
  /// The same topology and participant set with dense client updates —
  /// forwards are identical, so compression_ratio() isolates what top-k
  /// saves on the client uplinks.
  double dense_bytes = 0.0;
  double compression_ratio() const {
    return bytes_on_wire > 0.0 ? dense_bytes / bytes_on_wire : 1.0;
  }

  /// High-water mark of live aggregator/workspace bytes inside the
  /// engine (chunk workspaces, per-level fixed-point accumulators).
  /// Asserted flat across client counts by S2A_BENCH_FED_SCALE.
  std::size_t peak_accumulator_bytes = 0;

  /// Rounds each client participated in (survived sampling and plan
  /// dropout; it may still have been dropped or quarantined later).
  std::vector<int> client_participation;
};

struct HierResult {
  FlResult fl;
  HierStats hier;
};

/// Runs `config.fl.rounds` of hierarchical federated training. `faults`
/// schedules client-level failures exactly as in flat run_federated;
/// edge/region-level schedules ride in the config. With a one-edge
/// topology, kAll sampling, topk 1.0 and no upper-level faults this is
/// bit-identical to (and is the implementation of) flat run_federated.
HierResult run_federated_hier(FlStrategy strategy,
                              const sim::ClassificationDataset& train,
                              const sim::ClassificationDataset& test,
                              const std::vector<std::vector<int>>& shards,
                              const std::vector<HardwareProfile>& fleet,
                              const HierConfig& config, Rng& rng,
                              const fault::FaultPlan* faults = nullptr);

/// The per-round cohort the engine would train: sorted client ids drawn
/// from a generator seeded with (round_seed, sampling salt). Exposed for
/// tests (seeded-sampler determinism, weighted bias).
std::vector<int> sample_cohort(SampleMode mode, double fraction,
                               std::uint64_t round_seed,
                               const std::vector<std::vector<int>>& shards);

}  // namespace s2a::federated
