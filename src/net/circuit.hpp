// Per-link circuit breaker (CLOSED → OPEN → HALF_OPEN), the classic
// fail-fast guard that keeps a dead cloud from stalling the loop: after
// `failure_threshold` consecutive remote failures the breaker OPENs and
// every call is answered locally without touching the link; after
// `open_cooldown_s` of virtual time it HALF_OPENs and admits seeded
// probe requests (counter-hashed bernoulli, so probe admission is
// bit-reproducible at every thread count); `close_after` consecutive
// probe successes re-CLOSE it, any probe failure re-OPENs it.
//
// All state advances on the *loop clock* passed into allow() — the
// breaker never reads wall time, which is what lets chaos tests assert
// identical transition counts across S2A_THREADS values.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace s2a::net {

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };
const char* breaker_state_name(BreakerState state);

struct BreakerConfig {
  int failure_threshold = 3;   ///< consecutive failures to trip CLOSED→OPEN
  double open_cooldown_s = 0.5;  ///< virtual dwell before OPEN→HALF_OPEN
  double probe_prob = 0.5;     ///< HALF_OPEN admission probability per call
  int close_after = 2;         ///< consecutive probe successes to re-close
};

/// Cumulative transition/admission counters; compared bit-exactly in the
/// chaos determinism tests.
struct BreakerMetrics {
  long opens = 0;       ///< → OPEN transitions (trips and failed probes)
  long half_opens = 0;  ///< OPEN → HALF_OPEN transitions
  long closes = 0;      ///< HALF_OPEN → CLOSED recoveries
  long probes = 0;      ///< admitted HALF_OPEN probe requests
  long blocked = 0;     ///< calls denied remote access

  friend bool operator==(const BreakerMetrics&, const BreakerMetrics&) =
      default;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig cfg = {}, std::uint64_t seed = 0);

  /// May this call go remote at virtual time `now`? `request_id` keys the
  /// HALF_OPEN probe draw so admission is replayable. Advances
  /// OPEN→HALF_OPEN when the cooldown has elapsed.
  bool allow(double now_s, std::uint64_t request_id);

  /// Report the outcome of a remote call that allow() admitted.
  void record_success();
  void record_failure(double now_s);

  BreakerState state() const { return state_; }
  const BreakerMetrics& metrics() const { return metrics_; }
  const BreakerConfig& config() const { return cfg_; }

 private:
  void trip(double now_s);

  BreakerConfig cfg_;
  std::uint64_t seed_ = 0;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  double opened_at_s_ = 0.0;
  BreakerMetrics metrics_;
};

}  // namespace s2a::net
