#include "net/link.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::net {

const char* link_fault_name(LinkFaultKind kind) {
  switch (kind) {
    case LinkFaultKind::kPartition:
      return "link_partition";
    case LinkFaultKind::kLatencySpike:
      return "link_latency_spike";
    case LinkFaultKind::kBandwidthCollapse:
      return "link_bandwidth_collapse";
    case LinkFaultKind::kCorrupt:
      return "link_corrupt";
  }
  return "?";
}

double clamp_link_magnitude(LinkFaultKind kind, double magnitude) {
  // Non-finite severities (a NaN magnitude from a bad config) collapse to
  // the benign end of each range rather than propagating.
  if (!std::isfinite(magnitude)) magnitude = 0.0;
  switch (kind) {
    case LinkFaultKind::kPartition:
      return 0.0;  // magnitude unused
    case LinkFaultKind::kLatencySpike:
      return std::clamp(magnitude, 0.0, kMaxLatencySpikeS);
    case LinkFaultKind::kBandwidthCollapse:
      return std::clamp(magnitude, kMinBandwidthFactor, 1.0);
    case LinkFaultKind::kCorrupt:
      return std::clamp(magnitude, 0.0, 1.0);
  }
  return 0.0;
}

LinkFaultSchedule::LinkFaultSchedule(std::vector<LinkFaultWindow> windows)
    : windows_(std::move(windows)) {
  for (LinkFaultWindow& w : windows_) {
    S2A_CHECK(std::isfinite(w.start_s) && w.start_s >= 0.0);
    S2A_CHECK(w.end_s >= w.start_s);
    w.magnitude = clamp_link_magnitude(w.kind, w.magnitude);
  }
}

namespace {
const LinkFaultWindow* first_active(const std::vector<LinkFaultWindow>& ws,
                                    LinkFaultKind kind, double t) {
  for (const LinkFaultWindow& w : ws) {
    if (w.kind == kind && t >= w.start_s && t < w.end_s) return &w;
  }
  return nullptr;
}
}  // namespace

bool LinkFaultSchedule::partitioned(double t) const {
  return first_active(windows_, LinkFaultKind::kPartition, t) != nullptr;
}

double LinkFaultSchedule::latency_spike_s(double t) const {
  const LinkFaultWindow* w =
      first_active(windows_, LinkFaultKind::kLatencySpike, t);
  return w != nullptr ? w->magnitude : 0.0;
}

double LinkFaultSchedule::bandwidth_factor(double t) const {
  const LinkFaultWindow* w =
      first_active(windows_, LinkFaultKind::kBandwidthCollapse, t);
  return w != nullptr ? w->magnitude : 1.0;
}

double LinkFaultSchedule::corrupt_prob(double t) const {
  const LinkFaultWindow* w = first_active(windows_, LinkFaultKind::kCorrupt, t);
  return w != nullptr ? w->magnitude : 0.0;
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  // splitmix64 finalizer over the sum; cheap, and adjacent (a, b) pairs
  // land in decorrelated states (same construction Rng seeding uses).
  std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

LinkSim::LinkSim(LinkConfig cfg, LinkFaultSchedule faults, std::uint64_t seed,
                 std::uint64_t stream_id)
    : cfg_(cfg), faults_(std::move(faults)), seed_(mix_seed(seed, stream_id)) {
  S2A_CHECK(cfg_.bandwidth_bytes_per_s > 0.0);
  S2A_CHECK(cfg_.base_latency_s >= 0.0 && cfg_.jitter_s >= 0.0);
  S2A_CHECK(cfg_.loss_prob >= 0.0 && cfg_.loss_prob <= 1.0);
  S2A_CHECK(cfg_.reorder_prob >= 0.0 && cfg_.reorder_prob <= 1.0);
  S2A_CHECK(cfg_.reorder_extra_s >= 0.0);
  S2A_CHECK(cfg_.sharers >= 1);
}

double LinkSim::effective_bandwidth(double t) const {
  return cfg_.bandwidth_bytes_per_s * faults_.bandwidth_factor(t) /
         static_cast<double>(cfg_.sharers);
}

double LinkSim::traverse(double depart_s, std::size_t bytes, Rng& rng) const {
  // Draws happen unconditionally so the consumption pattern (and thus
  // every later draw from this per-request generator) is identical on
  // the healthy and faulty paths.
  const double jitter = cfg_.jitter_s > 0.0 ? rng.uniform(0.0, cfg_.jitter_s)
                                            : 0.0;
  const bool lost = rng.bernoulli(cfg_.loss_prob);
  const bool reordered = rng.bernoulli(cfg_.reorder_prob);

  if (faults_.partitioned(depart_s)) return -1.0;
  if (lost) return -1.0;

  const double serialize =
      static_cast<double>(bytes) / effective_bandwidth(depart_s);
  double arrival = depart_s + serialize + cfg_.base_latency_s + jitter +
                   faults_.latency_spike_s(depart_s);
  if (reordered) arrival += cfg_.reorder_extra_s;
  // A partition that begins while the packet is in flight eats it too.
  if (faults_.partitioned(arrival)) return -1.0;
  return arrival;
}

RoundTrip LinkSim::roundtrip(double send_s, std::size_t request_bytes,
                             std::size_t response_bytes,
                             double remote_compute_s,
                             std::uint64_t request_id) const {
  S2A_CHECK(std::isfinite(send_s));
  S2A_CHECK(remote_compute_s >= 0.0);
  RoundTrip rt;
  Rng rng(mix_seed(seed_, request_id));

  const double up_arrival = traverse(send_s, request_bytes, rng);
  if (up_arrival < 0.0) {
    S2A_COUNTER_ADD("net.link_drops", 1);
    return rt;
  }
  rt.up_s = up_arrival - send_s;

  const double resp_depart = up_arrival + remote_compute_s;
  const double down_arrival = traverse(resp_depart, response_bytes, rng);
  if (down_arrival < 0.0) {
    S2A_COUNTER_ADD("net.link_drops", 1);
    return rt;
  }
  rt.down_s = down_arrival - resp_depart;

  rt.delivered = true;
  rt.response_at_s = down_arrival;
  rt.corrupted = rng.bernoulli(faults_.corrupt_prob(resp_depart));
  S2A_COUNTER_ADD("net.link_deliveries", 1);
  if (rt.corrupted) S2A_COUNTER_ADD("net.link_corruptions", 1);
  S2A_HISTOGRAM_RECORD("net.link_rtt_s", down_arrival - send_s);
  return rt;
}

double LinkSim::estimate_rtt_s(std::size_t request_bytes,
                               std::size_t response_bytes,
                               double remote_compute_s) const {
  const double share =
      cfg_.bandwidth_bytes_per_s / static_cast<double>(cfg_.sharers);
  const double serialize =
      static_cast<double>(request_bytes + response_bytes) / share;
  return serialize + 2.0 * (cfg_.base_latency_s + 0.5 * cfg_.jitter_s) +
         remote_compute_s;
}

}  // namespace s2a::net
