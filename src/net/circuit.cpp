#include "net/circuit.hpp"

#include "net/link.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::net {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "CLOSED";
    case BreakerState::kOpen:
      return "OPEN";
    case BreakerState::kHalfOpen:
      return "HALF_OPEN";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  S2A_CHECK(cfg_.failure_threshold >= 1);
  S2A_CHECK(cfg_.open_cooldown_s >= 0.0);
  S2A_CHECK(cfg_.probe_prob > 0.0 && cfg_.probe_prob <= 1.0);
  S2A_CHECK(cfg_.close_after >= 1);
}

void CircuitBreaker::trip(double now_s) {
  state_ = BreakerState::kOpen;
  opened_at_s_ = now_s;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  ++metrics_.opens;
  S2A_COUNTER_ADD("net.breaker_opens", 1);
}

bool CircuitBreaker::allow(double now_s, std::uint64_t request_id) {
  if (state_ == BreakerState::kOpen &&
      now_s - opened_at_s_ >= cfg_.open_cooldown_s) {
    state_ = BreakerState::kHalfOpen;
    probe_successes_ = 0;
    ++metrics_.half_opens;
    S2A_COUNTER_ADD("net.breaker_half_opens", 1);
  }
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      ++metrics_.blocked;
      S2A_COUNTER_ADD("net.breaker_blocked", 1);
      return false;
    case BreakerState::kHalfOpen: {
      // Seeded probe admission: hashed per request id, not drawn from a
      // shared stream, so admission is independent of call interleaving.
      Rng rng(mix_seed(seed_ ^ 0xC1BCu, request_id));
      if (rng.bernoulli(cfg_.probe_prob)) {
        ++metrics_.probes;
        S2A_COUNTER_ADD("net.breaker_probes", 1);
        return true;
      }
      ++metrics_.blocked;
      S2A_COUNTER_ADD("net.breaker_blocked", 1);
      return false;
    }
  }
  return false;
}

void CircuitBreaker::record_success() {
  if (state_ == BreakerState::kHalfOpen) {
    if (++probe_successes_ >= cfg_.close_after) {
      state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
      probe_successes_ = 0;
      ++metrics_.closes;
      S2A_COUNTER_ADD("net.breaker_closes", 1);
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure(double now_s) {
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately and restarts the cooldown.
    trip(now_s);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= cfg_.failure_threshold) {
    trip(now_s);
  }
}

}  // namespace s2a::net
