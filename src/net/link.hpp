// Deterministic simulated network link (the edge↔cloud uplink of Sec. VII).
//
// The link is driven entirely by the *loop clock*: a round trip at virtual
// time t is an arithmetic function of (config, fault schedule, seed,
// request id), never of wall time or call order. Randomness is
// counter-hashed — every request derives a fresh generator from
// mix(seed, request_id) — so two endpoints with the same seed but
// different stream ids are decorrelated, and the same request id always
// sees the same loss/jitter draw no matter which thread issues it or how
// many other requests are in flight. That is what makes fleet runs
// bit-reproducible at every thread count (tests/net_test.cpp).
//
// Contention on a shared uplink is modeled statically: `sharers` divides
// the provisioned bandwidth, the fair share every member sees when a
// whole fleet offloads over one radio. Dynamic in-flight counts feed obs
// gauges only — they never enter the latency arithmetic, because order-
// dependent arithmetic would break cross-thread-count determinism.
//
// Faults come from a LinkFaultSchedule — value-type windows over virtual
// time (partition, latency spike, bandwidth collapse, response
// corruption), typically converted from a seeded fault::FaultPlan
// (fault.hpp owns schedule generation; net stays below fault in the
// dependency order: util → obs → net → core → fault).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace s2a::net {

/// Link-level fault kinds. Mirrors fault::FaultKind's link subset;
/// fault::FaultPlan::link_schedule() converts (fault depends on net, so
/// net cannot name fault's enum).
enum class LinkFaultKind {
  kPartition = 0,       ///< link fully down: nothing delivered
  kLatencySpike,        ///< magnitude = extra one-way delay (s)
  kBandwidthCollapse,   ///< magnitude = throughput factor (slow drip)
  kCorrupt,             ///< magnitude = P(response payload corrupted)
};
const char* link_fault_name(LinkFaultKind kind);

// Severity clamps (docs/RESILIENCE.md): an out-of-range schedule entry is
// clamped, never trusted — a FaultPlan with magnitude 1e9 on a latency
// spike cannot produce an unbounded round trip (tests/net_test.cpp
// regression).
inline constexpr double kMaxLatencySpikeS = 5.0;
inline constexpr double kMinBandwidthFactor = 1e-3;

/// Clamp a fault magnitude into the legal range for its kind.
double clamp_link_magnitude(LinkFaultKind kind, double magnitude);

/// One fault window over virtual time [start_s, end_s).
struct LinkFaultWindow {
  LinkFaultKind kind = LinkFaultKind::kPartition;
  double start_s = 0.0;
  double end_s = 0.0;
  double magnitude = 0.0;  ///< clamped per kind on schedule construction
};

/// Value-type schedule of link fault windows, queried by virtual time.
/// Magnitudes are clamped on construction; windows must be well-formed
/// (end >= start). The first active window of a kind wins, matching
/// fault::FaultPlan's first-match semantics.
class LinkFaultSchedule {
 public:
  LinkFaultSchedule() = default;
  explicit LinkFaultSchedule(std::vector<LinkFaultWindow> windows);

  bool partitioned(double t) const;
  /// Extra one-way delay at time t (0 outside spike windows).
  double latency_spike_s(double t) const;
  /// Throughput multiplier at time t (1 outside collapse windows).
  double bandwidth_factor(double t) const;
  /// Probability the response payload is corrupted at time t.
  double corrupt_prob(double t) const;

  const std::vector<LinkFaultWindow>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }

 private:
  std::vector<LinkFaultWindow> windows_;
};

/// Link provisioning. Defaults model a decent edge uplink: 10 MB/s,
/// 2 ms base one-way latency with 1 ms uniform jitter, lossless.
struct LinkConfig {
  double bandwidth_bytes_per_s = 1.0e7;
  double base_latency_s = 2e-3;   ///< one-way propagation delay
  double jitter_s = 1e-3;         ///< uniform extra one-way delay in [0, jitter_s)
  double loss_prob = 0.0;         ///< per-direction drop probability
  double reorder_prob = 0.0;      ///< P(a delivery is held back)
  double reorder_extra_s = 5e-3;  ///< hold-back delay for reordered deliveries
  /// Static fair-share contention: members sharing one uplink each see
  /// bandwidth_bytes_per_s / sharers. Keeps contention deterministic
  /// (no order-dependent accounting).
  int sharers = 1;
};

/// Outcome of one request/response round trip issued at `send_s`.
struct RoundTrip {
  bool delivered = false;   ///< response arrived (possibly corrupted)
  bool corrupted = false;   ///< payload damaged by a kCorrupt window
  double response_at_s = 0.0;  ///< virtual arrival time; valid iff delivered
  double up_s = 0.0;        ///< request traversal time (diagnostics)
  double down_s = 0.0;      ///< response traversal time (diagnostics)
};

/// One endpoint of the simulated link. Value type; copy freely. Two
/// endpoints constructed with the same (config, schedule, seed) but
/// different stream ids draw decorrelated randomness — give each fleet
/// member its own stream id.
class LinkSim {
 public:
  LinkSim() : LinkSim(LinkConfig{}, LinkFaultSchedule{}, 0, 0) {}
  LinkSim(LinkConfig cfg, LinkFaultSchedule faults, std::uint64_t seed,
          std::uint64_t stream_id = 0);

  /// Simulate a request of `request_bytes` sent at virtual time `send_s`,
  /// remote compute of `remote_compute_s`, and a `response_bytes` reply.
  /// `request_id` must be unique per logical attempt on this endpoint —
  /// it keys all randomness, so replaying the same id reproduces the
  /// same outcome bit-for-bit.
  RoundTrip roundtrip(double send_s, std::size_t request_bytes,
                      std::size_t response_bytes, double remote_compute_s,
                      std::uint64_t request_id) const;

  /// Fault-free expected round-trip time for the given shape; seeds the
  /// offload cost model before any observation exists.
  double estimate_rtt_s(std::size_t request_bytes, std::size_t response_bytes,
                        double remote_compute_s) const;

  const LinkConfig& config() const { return cfg_; }
  const LinkFaultSchedule& faults() const { return faults_; }

 private:
  /// One-way traversal starting at `depart_s`; returns arrival time or a
  /// negative value when the packet is lost/partitioned away.
  double traverse(double depart_s, std::size_t bytes, Rng& rng) const;
  double effective_bandwidth(double t) const;

  LinkConfig cfg_;
  LinkFaultSchedule faults_;
  std::uint64_t seed_ = 0;
};

/// splitmix64-style mix of two words; used to derive per-request seeds.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);

}  // namespace s2a::net
