// Event + frame camera over procedural moving scenes, with dense
// ground-truth optical flow.
//
// Stand-in for the MVSEC recordings used by the neuromorphic optical-flow
// comparison (Sec. VI, Fig. 9): textured patches translate over a textured
// background; an event camera reports per-pixel log-intensity changes
// (polarity counts per step) while a frame camera reports absolute
// intensity at a low rate. The known motion field gives exact flow labels.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace s2a::sim {

/// Row-major grayscale image in [0, 1].
struct Image {
  int width = 0, height = 0;
  std::vector<double> pixels;

  Image() = default;
  Image(int w, int h) : width(w), height(h),
                        pixels(static_cast<std::size_t>(w) * h, 0.0) {}
  double& at(int x, int y) { return pixels[static_cast<std::size_t>(y) * width + x]; }
  double at(int x, int y) const { return pixels[static_cast<std::size_t>(y) * width + x]; }
};

/// Per-pixel positive / negative event counts accumulated over one step.
struct EventFrame {
  int width = 0, height = 0;
  std::vector<double> pos, neg;

  EventFrame() = default;
  EventFrame(int w, int h)
      : width(w), height(h),
        pos(static_cast<std::size_t>(w) * h, 0.0),
        neg(static_cast<std::size_t>(w) * h, 0.0) {}
  double total_events() const;
};

/// Dense flow in pixels per step.
struct FlowField {
  int width = 0, height = 0;
  std::vector<double> u, v;

  FlowField() = default;
  FlowField(int w, int h)
      : width(w), height(h),
        u(static_cast<std::size_t>(w) * h, 0.0),
        v(static_cast<std::size_t>(w) * h, 0.0) {}
};

/// A textured patch translating with constant velocity over a textured
/// (optionally panning) background.
struct MovingPatch {
  double x = 0.0, y = 0.0;      ///< top-left corner at t = 0
  int size = 8;
  double vx = 0.0, vy = 0.0;    ///< pixels per step
  std::vector<double> texture;  ///< size×size intensities
};

class MovingScene {
 public:
  /// `num_patches` moving patches; background pans at (bg_vx, bg_vy).
  MovingScene(int width, int height, int num_patches, double bg_vx,
              double bg_vy, Rng& rng);

  Image render(double t) const;
  /// Exact flow between t and t+1 (patch velocity inside patches,
  /// background velocity elsewhere; later patches occlude earlier ones).
  FlowField flow(double t) const;

  int width() const { return w_; }
  int height() const { return h_; }

 private:
  double background_at(double x, double y, double t) const;

  int w_, h_;
  double bg_vx_, bg_vy_;
  std::vector<double> bg_texture_;  ///< tiled value-noise texture
  int bg_size_;
  std::vector<MovingPatch> patches_;
};

/// DVS-style event generation: events fire when |Δ log I| crosses
/// `threshold`, quantized to counts (a 0.15 threshold mirrors common DVS
/// contrast sensitivities).
class EventCamera {
 public:
  /// `max_events_per_step` models the pixel refractory period: real DVS
  /// pixels cannot re-fire arbitrarily fast, which caps per-step counts.
  explicit EventCamera(double threshold = 0.15,
                       double max_events_per_step = 3.0)
      : threshold_(threshold), max_events_(max_events_per_step) {}
  EventFrame events_between(const Image& before, const Image& after) const;

 private:
  double threshold_;
  double max_events_;
};

/// One supervised flow sample: temporally binned events + prior frame ->
/// GT flow. The inter-frame interval is split into `bins.size()`
/// sub-intervals; motion direction is encoded in how event patterns shift
/// across bins (the event-volume representation MVSEC flow networks use).
struct FlowSample {
  std::vector<EventFrame> bins;  ///< per-sub-interval event counts
  EventFrame events;             ///< aggregate over the interval (masking)
  Image frame;      ///< intensity image at the start of the interval
  FlowField flow;   ///< ground truth
};

/// Generates a dataset of flow samples from freshly sampled moving scenes.
std::vector<FlowSample> make_flow_dataset(int count, int width, int height,
                                          Rng& rng, int time_bins = 4);

/// Average endpoint error between predicted and true flow, optionally
/// restricted to pixels with at least one event (the standard MVSEC
/// "sparse AEE" protocol).
double average_endpoint_error(const FlowField& pred, const FlowField& truth,
                              const EventFrame* mask = nullptr);

}  // namespace s2a::sim
