// Synthetic classification data for the federated-learning experiments
// (Sec. VII): a CIFAR-10 stand-in with 10 Gaussian-mixture classes and a
// Dirichlet non-IID partitioner, the standard heterogeneity model in the
// FL literature.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace s2a::sim {

struct ClassificationDataset {
  int feature_dim = 0;
  int num_classes = 0;
  std::vector<std::vector<double>> features;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
};

/// `separation` controls class-mean distance relative to within-class σ=1;
/// ~2.5 gives a task that is learnable but not trivial. Class means are
/// drawn once per dataset, so train/test splits from the same call are
/// consistent.
ClassificationDataset make_gaussian_classes(int samples, int feature_dim,
                                            int num_classes, double separation,
                                            Rng& rng);

/// Splits sample indices across `num_clients` with label proportions drawn
/// from Dirichlet(alpha). Small alpha (e.g. 0.3) gives highly non-IID
/// shards; large alpha approaches IID. Every client receives ≥1 sample.
std::vector<std::vector<int>> dirichlet_partition(
    const std::vector<int>& labels, int num_clients, int num_classes,
    double alpha, Rng& rng);

/// Gamma(shape, 1) sampler (Marsaglia–Tsang), used by the Dirichlet
/// partitioner; exposed for testing.
double sample_gamma(double shape, Rng& rng);

}  // namespace s2a::sim
