// Procedural 3-D driving scenes: a ground plane plus boxes drawn from
// car / pedestrian / cyclist archetypes, optionally moving.
//
// Stand-in for the KITTI/Waymo frames the paper's LiDAR experiments use
// (see DESIGN.md substitution table): the detection and masking
// experiments only need geometry with class-dependent shapes at realistic
// ranges, which these scenes provide with exact ground truth.
#pragma once

#include <vector>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace s2a::sim {

enum class ObjectClass { kCar = 0, kPedestrian = 1, kCyclist = 2 };
inline constexpr int kNumObjectClasses = 3;
const char* object_class_name(ObjectClass c);

struct SceneObject {
  ObjectClass cls = ObjectClass::kCar;
  Box3 box;
  Vec3 velocity;  ///< m/s, used by multi-agent & adaptive-rate experiments
};

struct Scene {
  std::vector<SceneObject> objects;
  double ground_z = 0.0;

  /// Advance every object by its velocity for `dt` seconds.
  void step(double dt);
};

struct SceneConfig {
  double extent = 50.0;       ///< objects placed in [-extent, extent]²
  double min_range = 4.0;     ///< keep a clear zone around the sensor origin
  int cars_min = 2, cars_max = 5;
  int pedestrians_min = 1, pedestrians_max = 4;
  int cyclists_min = 1, cyclists_max = 3;
  double moving_fraction = 0.3;
  double max_speed = 8.0;
};

/// Samples a scene; archetype dimensions are jittered ±15%.
Scene generate_scene(const SceneConfig& config, Rng& rng);

/// Nominal (unjittered) box size for a class — used by the detectors as a
/// shape prior and by tests.
Vec3 class_archetype_size(ObjectClass c);

}  // namespace s2a::sim
