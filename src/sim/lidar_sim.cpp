#include "sim/lidar_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace s2a::sim {

std::size_t PointCloud::hit_count() const {
  std::size_t n = 0;
  for (const auto& r : returns)
    if (r.hit) ++n;
  return n;
}

double PointCloud::coverage(const LidarConfig& config) const {
  const int total = config.azimuth_steps * config.elevation_steps;
  return total > 0 ? static_cast<double>(pulses_fired) / total : 0.0;
}

LidarSimulator::LidarSimulator(LidarConfig config) : cfg_(config) {
  S2A_CHECK(cfg_.azimuth_steps > 0 && cfg_.elevation_steps > 0);
  S2A_CHECK(cfg_.max_range > 0.0);
  S2A_CHECK(cfg_.full_pulse_energy_j > cfg_.min_pulse_energy_j);
}

double LidarSimulator::pulse_energy_for_range(double target_range) const {
  const double r = std::clamp(target_range, 0.0, cfg_.max_range);
  const double frac = r / cfg_.max_range;
  return std::max(cfg_.min_pulse_energy_j,
                  cfg_.full_pulse_energy_j * frac * frac * frac * frac);
}

double LidarSimulator::reach_for_energy(double pulse_energy_j) const {
  const double frac =
      std::pow(std::clamp(pulse_energy_j / cfg_.full_pulse_energy_j, 0.0, 1.0),
               0.25);
  return cfg_.max_range * frac;
}

Vec3 LidarSimulator::beam_direction(int az, int el) const {
  S2A_DCHECK(az >= 0 && az < cfg_.azimuth_steps);
  S2A_DCHECK(el >= 0 && el < cfg_.elevation_steps);
  const double azimuth =
      2.0 * std::numbers::pi * (az + 0.5) / cfg_.azimuth_steps;
  const double el_span = cfg_.elevation_max_deg - cfg_.elevation_min_deg;
  const double elevation_deg =
      cfg_.elevation_min_deg +
      el_span * (el + 0.5) / cfg_.elevation_steps;
  const double elevation = elevation_deg * std::numbers::pi / 180.0;
  return {std::cos(elevation) * std::cos(azimuth),
          std::cos(elevation) * std::sin(azimuth), std::sin(elevation)};
}

LidarReturn LidarSimulator::fire(const Scene& scene, int az, int el,
                                 double energy_j, Rng& rng) const {
  LidarReturn ret;
  ret.azimuth_idx = az;
  ret.elevation_idx = el;
  ret.pulse_energy_j = energy_j;

  const Vec3 origin{0.0, 0.0, cfg_.sensor_height};
  const Vec3 dir = beam_direction(az, el);
  const double reach = reach_for_energy(energy_j);

  double best_t = std::numeric_limits<double>::infinity();
  for (const auto& obj : scene.objects) {
    const double t = ray_box_intersect(origin, dir, obj.box);
    if (t > 0.0 && t < best_t) best_t = t;
  }
  // Ground plane.
  if (dir.z < 0.0) {
    const double t = (scene.ground_z - origin.z) / dir.z;
    if (t > 0.0 && t < best_t) best_t = t;
  }

  if (std::isfinite(best_t) && best_t <= reach) {
    const double noisy_t =
        std::max(0.1, best_t + rng.normal(0.0, cfg_.range_noise));
    ret.hit = true;
    ret.range = noisy_t;
    ret.point = origin + dir * noisy_t;
  }
  return ret;
}

PointCloud LidarSimulator::full_scan(const Scene& scene, Rng& rng) const {
  PointCloud pc;
  pc.returns.reserve(static_cast<std::size_t>(num_beams()));
  for (int el = 0; el < cfg_.elevation_steps; ++el)
    for (int az = 0; az < cfg_.azimuth_steps; ++az) {
      pc.returns.push_back(fire(scene, az, el, cfg_.full_pulse_energy_j, rng));
      ++pc.pulses_fired;
      pc.emitted_energy_j += cfg_.full_pulse_energy_j;
    }
  return pc;
}

PointCloud LidarSimulator::selective_scan(
    const Scene& scene, const std::vector<BeamCommand>& commands,
    Rng& rng) const {
  PointCloud pc;
  pc.returns.reserve(commands.size());
  for (const auto& cmd : commands) {
    S2A_CHECK_MSG(cmd.azimuth_idx >= 0 && cmd.azimuth_idx < cfg_.azimuth_steps,
                  "azimuth " << cmd.azimuth_idx);
    S2A_CHECK(cmd.elevation_idx >= 0 &&
              cmd.elevation_idx < cfg_.elevation_steps);
    const double e = pulse_energy_for_range(cmd.target_range);
    pc.returns.push_back(
        fire(scene, cmd.azimuth_idx, cmd.elevation_idx, e, rng));
    ++pc.pulses_fired;
    pc.emitted_energy_j += e;
  }
  return pc;
}

}  // namespace s2a::sim
