// LiDAR corruption suite modeled on KITTI-C / Robo3D (Sec. V):
// natural corruptions (snow, fog, rain), external disruptions (beam
// missing, motion blur) and internal sensor failures (crosstalk,
// cross-sensor interference). Each applies to a simulated point cloud at a
// severity in {1..5}.
#pragma once

#include <string>
#include <vector>

#include "sim/lidar_sim.hpp"
#include "util/rng.hpp"

namespace s2a::sim {

enum class CorruptionType {
  kNone = 0,
  kSnow,
  kFog,
  kRain,
  kBeamMissing,
  kMotionBlur,
  kCrosstalk,
  kCrossSensor,
};

const char* corruption_name(CorruptionType type);

/// All corruptions other than kNone, in declaration order.
std::vector<CorruptionType> all_corruptions();

/// Returns a corrupted copy. Severity 1 (mild) .. 5 (severe); severity 0
/// or kNone return the input unchanged (kNone ignores severity
/// entirely). Out-of-range severities are clamped into {0..5} rather
/// than trusted — sweep harnesses feeding severity+1 off the end get
/// the saturated corruption, not undefined behaviour.
PointCloud apply_corruption(const PointCloud& cloud, CorruptionType type,
                            int severity, const LidarConfig& config, Rng& rng);

}  // namespace s2a::sim
