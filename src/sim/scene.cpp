#include "sim/scene.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::sim {

const char* object_class_name(ObjectClass c) {
  switch (c) {
    case ObjectClass::kCar:
      return "Car";
    case ObjectClass::kPedestrian:
      return "Pedestrian";
    case ObjectClass::kCyclist:
      return "Cyclist";
  }
  return "?";
}

void Scene::step(double dt) {
  for (auto& o : objects) o.box.center = o.box.center + o.velocity * dt;
}

Vec3 class_archetype_size(ObjectClass c) {
  switch (c) {
    case ObjectClass::kCar:
      return {4.2, 1.8, 1.6};
    case ObjectClass::kPedestrian:
      return {0.6, 0.6, 1.75};
    case ObjectClass::kCyclist:
      return {1.8, 0.6, 1.7};
  }
  return {1, 1, 1};
}

namespace {
void place_objects(Scene& scene, ObjectClass cls, int count,
                   const SceneConfig& cfg, Rng& rng) {
  const Vec3 base = class_archetype_size(cls);
  for (int i = 0; i < count; ++i) {
    SceneObject obj;
    obj.cls = cls;
    const double jx = rng.uniform(0.85, 1.15);
    const double jy = rng.uniform(0.85, 1.15);
    const double jz = rng.uniform(0.85, 1.15);
    obj.box.size = {base.x * jx, base.y * jy, base.z * jz};

    // Rejection-sample a position outside the sensor clear zone and not
    // overlapping already-placed objects.
    for (int attempt = 0; attempt < 100; ++attempt) {
      const double x = rng.uniform(-cfg.extent, cfg.extent);
      const double y = rng.uniform(-cfg.extent, cfg.extent);
      if (std::sqrt(x * x + y * y) < cfg.min_range) continue;
      obj.box.center = {x, y, scene.ground_z + obj.box.size.z / 2.0};
      bool clash = false;
      for (const auto& other : scene.objects)
        if (iou_bev(obj.box, other.box) > 0.0) {
          clash = true;
          break;
        }
      if (!clash) break;
    }

    if (rng.bernoulli(cfg.moving_fraction)) {
      const double speed = rng.uniform(0.5, cfg.max_speed);
      const double heading = rng.uniform(0.0, 2.0 * 3.14159265358979);
      obj.velocity = {speed * std::cos(heading), speed * std::sin(heading), 0.0};
    }
    scene.objects.push_back(obj);
  }
}
}  // namespace

Scene generate_scene(const SceneConfig& cfg, Rng& rng) {
  S2A_CHECK(cfg.extent > cfg.min_range);
  Scene scene;
  place_objects(scene, ObjectClass::kCar,
                rng.uniform_int(cfg.cars_min, cfg.cars_max), cfg, rng);
  place_objects(scene, ObjectClass::kPedestrian,
                rng.uniform_int(cfg.pedestrians_min, cfg.pedestrians_max), cfg,
                rng);
  place_objects(scene, ObjectClass::kCyclist,
                rng.uniform_int(cfg.cyclists_min, cfg.cyclists_max), cfg, rng);
  return scene;
}

}  // namespace s2a::sim
