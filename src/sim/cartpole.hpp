// Cart-pole environment with external force disturbances and a rendered
// 1-D "retina" observation.
//
// This is the control substrate for the RoboKoop experiments (Sec. IV,
// Fig. 5): the paper evaluates on pixel-based cart-pole; here the visual
// observation is a 1-D intensity strip encoding cart and pole-tip
// positions, which preserves the "control from vision" problem shape while
// staying cheap enough to train in-process.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace s2a::sim {

struct CartPoleConfig {
  double gravity = 9.8;
  double cart_mass = 1.0;
  double pole_mass = 0.1;
  double pole_half_length = 0.5;
  double force_mag = 10.0;   ///< actuator scale: applied force = a * force_mag
  double dt = 0.02;
  double x_limit = 2.4;      ///< episode fails beyond |x| > x_limit
  double theta_limit = 0.21; ///< radians (~12°)
  /// External disturbance (Fig. 5b): with probability `disturb_prob` per
  /// step, a force ~ U(disturb_min, disturb_max) with random sign is added.
  double disturb_prob = 0.0;
  double disturb_min = 2.0;
  double disturb_max = 8.0;
};

struct CartPoleState {
  double x = 0.0, x_dot = 0.0, theta = 0.0, theta_dot = 0.0;
};

class CartPole {
 public:
  explicit CartPole(CartPoleConfig config = {}) : cfg_(config) {}

  /// Uniform small perturbation around the upright balance point.
  void reset(Rng& rng);
  /// Applies action a in [-1, 1]; returns reward (1 while balanced, 0 on
  /// failure). Disturbances draw from `rng`.
  double step(double action, Rng& rng);

  bool failed() const;
  const CartPoleState& state() const { return s_; }
  void set_state(const CartPoleState& s) { s_ = s; }
  const CartPoleConfig& config() const { return cfg_; }

  /// Ground-truth state as a 4-vector (for oracle baselines and tests).
  std::vector<double> state_vector() const;

  /// Two-strip retina (2·width values): strip 1 images the cart position
  /// over [-x_limit, x_limit]; strip 2 images the pole tip's horizontal
  /// offset *relative to the cart*, magnified over ±0.4 m so small tilt
  /// angles are visible at this resolution. Velocities are not observable
  /// from one frame — controllers stack consecutive retinas (as
  /// pixel-based RL does with frame stacks).
  std::vector<double> render_retina(int width = 32) const;

 private:
  CartPoleConfig cfg_;
  CartPoleState s_;
};

}  // namespace s2a::sim
