#include "sim/corruptions.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::sim {

const char* corruption_name(CorruptionType type) {
  switch (type) {
    case CorruptionType::kNone:
      return "clean";
    case CorruptionType::kSnow:
      return "snow";
    case CorruptionType::kFog:
      return "fog";
    case CorruptionType::kRain:
      return "rain";
    case CorruptionType::kBeamMissing:
      return "beam_missing";
    case CorruptionType::kMotionBlur:
      return "motion_blur";
    case CorruptionType::kCrosstalk:
      return "crosstalk";
    case CorruptionType::kCrossSensor:
      return "cross_sensor";
  }
  return "?";
}

std::vector<CorruptionType> all_corruptions() {
  return {CorruptionType::kSnow,        CorruptionType::kFog,
          CorruptionType::kRain,        CorruptionType::kBeamMissing,
          CorruptionType::kMotionBlur,  CorruptionType::kCrosstalk,
          CorruptionType::kCrossSensor};
}

namespace {

// Re-derives a hit point from (azimuth, elevation, range) beam geometry so
// corrupted ranges stay on the beam ray.
void set_range(LidarReturn& r, double new_range, const LidarConfig& cfg) {
  const double azimuth =
      2.0 * 3.14159265358979 * (r.azimuth_idx + 0.5) / cfg.azimuth_steps;
  const double el_span = cfg.elevation_max_deg - cfg.elevation_min_deg;
  const double elevation_deg =
      cfg.elevation_min_deg + el_span * (r.elevation_idx + 0.5) / cfg.elevation_steps;
  const double elevation = elevation_deg * 3.14159265358979 / 180.0;
  r.range = new_range;
  r.hit = true;
  r.point = Vec3{std::cos(elevation) * std::cos(azimuth),
                 std::cos(elevation) * std::sin(azimuth),
                 std::sin(elevation)} *
                new_range +
            Vec3{0.0, 0.0, cfg.sensor_height};
}

// Backscatter clutter: a fraction of beams return early from airborne
// particles near the sensor, and some returns are lost entirely.
void scatter_weather(PointCloud& pc, double clutter_prob, double drop_prob,
                     double clutter_max_range, double noise_sigma,
                     const LidarConfig& cfg, Rng& rng) {
  for (auto& r : pc.returns) {
    if (r.hit && rng.bernoulli(drop_prob)) {
      r.hit = false;
      continue;
    }
    if (rng.bernoulli(clutter_prob)) {
      set_range(r, rng.uniform(0.5, clutter_max_range), cfg);
      continue;
    }
    if (r.hit && noise_sigma > 0.0)
      set_range(r, std::max(0.1, r.range + rng.normal(0.0, noise_sigma)), cfg);
  }
}

}  // namespace

PointCloud apply_corruption(const PointCloud& cloud, CorruptionType type,
                            int severity, const LidarConfig& cfg, Rng& rng) {
  // Validate instead of trusting the caller: severities outside {0..5}
  // saturate (negative → clean, >5 → severity 5), and kNone returns the
  // input unchanged no matter what severity rides along.
  severity = std::clamp(severity, 0, 5);
  if (type == CorruptionType::kNone || severity == 0) return cloud;

  PointCloud pc = cloud;
  const double s = severity / 5.0;  // 0.2 .. 1.0

  switch (type) {
    case CorruptionType::kNone:
      break;
    case CorruptionType::kSnow:
      // Heavy near-field backscatter + dropouts; the paper's Fig. 7 sweep.
      scatter_weather(pc, 0.25 * s, 0.35 * s, 8.0, 0.1 * s, cfg, rng);
      break;
    case CorruptionType::kFog: {
      // Range-dependent attenuation: far returns are lost first.
      const double visibility = cfg.max_range * (1.0 - 0.75 * s);
      for (auto& r : pc.returns) {
        if (!r.hit) continue;
        const double p_lost = 1.0 - std::exp(-r.range / visibility);
        if (rng.bernoulli(p_lost))
          r.hit = false;
        else
          set_range(r, std::max(0.1, r.range + rng.normal(0.0, 0.05 * s)), cfg);
      }
      break;
    }
    case CorruptionType::kRain:
      scatter_weather(pc, 0.08 * s, 0.15 * s, 15.0, 0.06 * s, cfg, rng);
      break;
    case CorruptionType::kBeamMissing: {
      // Entire elevation channels drop out (connector / laser failures).
      const int dead = std::max(1, static_cast<int>(cfg.elevation_steps * 0.4 * s));
      const auto dead_rows = rng.sample_without_replacement(cfg.elevation_steps, dead);
      std::vector<bool> is_dead(static_cast<std::size_t>(cfg.elevation_steps), false);
      for (int d : dead_rows) is_dead[static_cast<std::size_t>(d)] = true;
      for (auto& r : pc.returns)
        if (is_dead[static_cast<std::size_t>(r.elevation_idx)]) r.hit = false;
      break;
    }
    case CorruptionType::kMotionBlur: {
      // Ego-motion smears returns along azimuth: shift each return's ray.
      const double max_shift = 3.0 * s;  // beams
      for (auto& r : pc.returns) {
        if (!r.hit) continue;
        const int shift = static_cast<int>(std::round(rng.uniform(-max_shift, max_shift)));
        r.azimuth_idx =
            ((r.azimuth_idx + shift) % cfg.azimuth_steps + cfg.azimuth_steps) %
            cfg.azimuth_steps;
        set_range(r, r.range, cfg);
      }
      break;
    }
    case CorruptionType::kCrosstalk:
      // A second emitter on the same vehicle: random beams report spurious
      // uniform-range ghosts.
      for (auto& r : pc.returns)
        if (rng.bernoulli(0.15 * s))
          set_range(r, rng.uniform(2.0, cfg.max_range), cfg);
      break;
    case CorruptionType::kCrossSensor: {
      // Interference from another vehicle's LiDAR: a coherent ghost ring
      // at a fixed range band plus extra noise.
      const double ring = rng.uniform(10.0, 30.0);
      for (auto& r : pc.returns)
        if (rng.bernoulli(0.2 * s))
          set_range(r, ring + rng.normal(0.0, 0.5), cfg);
      break;
    }
  }
  return pc;
}

}  // namespace s2a::sim
