// Ray-cast LiDAR over procedural scenes with a physical pulse-energy model.
//
// The energy model is the one Sec. III builds on: detecting a target at
// range r requires pulse energy scaling as r⁴ (radar equation), so a pulse
// rated for the sensor's max range costs `full_pulse_energy_j` (50 µJ in
// the paper) while a pulse that only needs to reach r costs
// E(r) = E_full · (r / r_max)⁴, floored at `min_pulse_energy_j`.
// Selective scans fire a subset of beams at reduced reach — exactly the
// knob R-MAE's radial masking turns.
#pragma once

#include <vector>

#include "sim/scene.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace s2a::sim {

struct LidarConfig {
  int azimuth_steps = 180;         ///< horizontal beams per revolution
  int elevation_steps = 12;        ///< vertical channels
  double elevation_min_deg = -12.0;
  double elevation_max_deg = 4.0;
  double max_range = 72.0;         ///< rated range at full pulse power
  double range_noise = 0.02;       ///< 1σ additive range noise (m)
  double sensor_height = 1.8;
  double full_pulse_energy_j = 50e-6;  ///< paper's conventional 50 µJ
  double min_pulse_energy_j = 0.5e-6;  ///< electronics floor per pulse
};

/// One fired pulse and its (possible) return.
struct LidarReturn {
  Vec3 point;            ///< hit location in sensor frame (valid iff hit)
  double range = 0.0;
  int azimuth_idx = 0;
  int elevation_idx = 0;
  bool hit = false;
  double pulse_energy_j = 0.0;
};

struct PointCloud {
  std::vector<LidarReturn> returns;  ///< one entry per fired pulse
  int pulses_fired = 0;
  double emitted_energy_j = 0.0;

  std::size_t hit_count() const;
  /// Fired pulses / total beams in `config` — the "scene coverage" row of
  /// Table II.
  double coverage(const LidarConfig& config) const;
};

/// A firing decision for one beam: pulse at the power needed to reach
/// `target_range` (≤ max_range).
struct BeamCommand {
  int azimuth_idx = 0;
  int elevation_idx = 0;
  double target_range = 0.0;
};

class LidarSimulator {
 public:
  explicit LidarSimulator(LidarConfig config = {});

  /// Conventional scan: every beam fires at full power.
  PointCloud full_scan(const Scene& scene, Rng& rng) const;

  /// Active scan: only the commanded beams fire, each at the power that
  /// reaches its target range. Targets beyond reach produce no return.
  PointCloud selective_scan(const Scene& scene,
                            const std::vector<BeamCommand>& commands,
                            Rng& rng) const;

  /// E(r) = E_full · (r/r_max)⁴, floored; this is the R⁴ law of Sec. III.
  double pulse_energy_for_range(double target_range) const;
  /// Inverse of the energy law: reach of a pulse with the given energy.
  double reach_for_energy(double pulse_energy_j) const;

  Vec3 beam_direction(int azimuth_idx, int elevation_idx) const;
  int num_beams() const { return cfg_.azimuth_steps * cfg_.elevation_steps; }
  const LidarConfig& config() const { return cfg_; }

 private:
  LidarReturn fire(const Scene& scene, int az, int el, double energy_j,
                   Rng& rng) const;

  LidarConfig cfg_;
};

}  // namespace s2a::sim
