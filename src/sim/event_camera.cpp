#include "sim/event_camera.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::sim {

double EventFrame::total_events() const {
  double s = 0.0;
  for (double p : pos) s += p;
  for (double n : neg) s += n;
  return s;
}

namespace {
// Smooth tileable value noise on an n×n lattice, bilinearly interpolated.
std::vector<double> make_value_noise(int n, Rng& rng) {
  std::vector<double> tex(static_cast<std::size_t>(n) * n);
  for (auto& t : tex) t = rng.uniform(0.15, 0.85);
  return tex;
}

double sample_tiled(const std::vector<double>& tex, int n, double x, double y) {
  // Wrap into [0, n).
  x = std::fmod(x, static_cast<double>(n));
  if (x < 0) x += n;
  y = std::fmod(y, static_cast<double>(n));
  if (y < 0) y += n;
  const int x0 = static_cast<int>(x), y0 = static_cast<int>(y);
  const int x1 = (x0 + 1) % n, y1 = (y0 + 1) % n;
  const double fx = x - x0, fy = y - y0;
  const auto at = [&](int xi, int yi) {
    return tex[static_cast<std::size_t>(yi) * n + xi];
  };
  return at(x0, y0) * (1 - fx) * (1 - fy) + at(x1, y0) * fx * (1 - fy) +
         at(x0, y1) * (1 - fx) * fy + at(x1, y1) * fx * fy;
}
}  // namespace

MovingScene::MovingScene(int width, int height, int num_patches, double bg_vx,
                         double bg_vy, Rng& rng)
    : w_(width), h_(height), bg_vx_(bg_vx), bg_vy_(bg_vy), bg_size_(16) {
  S2A_CHECK(width > 0 && height > 0 && num_patches >= 0);
  bg_texture_ = make_value_noise(bg_size_, rng);
  for (int i = 0; i < num_patches; ++i) {
    MovingPatch p;
    p.size = rng.uniform_int(std::max(4, width / 8), std::max(6, width / 4));
    p.x = rng.uniform(0.0, width - p.size);
    p.y = rng.uniform(0.0, height - p.size);
    p.vx = rng.uniform(-4.0, 4.0);
    p.vy = rng.uniform(-4.0, 4.0);
    p.texture.resize(static_cast<std::size_t>(p.size) * p.size);
    // High-contrast texture so patches generate dense events.
    for (auto& t : p.texture) t = rng.bernoulli(0.5) ? 0.9 : 0.1;
    patches_.push_back(std::move(p));
  }
}

double MovingScene::background_at(double x, double y, double t) const {
  // ~1 texel per screen pixel: features are a few pixels wide, so motion
  // is trackable rather than aliased pixel noise.
  const double scale = static_cast<double>(bg_size_) / w_;
  return sample_tiled(bg_texture_, bg_size_, (x - bg_vx_ * t) * scale,
                      (y - bg_vy_ * t) * scale);
}

Image MovingScene::render(double t) const {
  Image img(w_, h_);
  for (int y = 0; y < h_; ++y)
    for (int x = 0; x < w_; ++x) img.at(x, y) = background_at(x, y, t);

  for (const auto& p : patches_) {
    const double px = p.x + p.vx * t;
    const double py = p.y + p.vy * t;
    for (int dy = 0; dy < p.size; ++dy)
      for (int dx = 0; dx < p.size; ++dx) {
        const int x = static_cast<int>(std::floor(px)) + dx;
        const int y = static_cast<int>(std::floor(py)) + dy;
        if (x < 0 || x >= w_ || y < 0 || y >= h_) continue;
        img.at(x, y) = p.texture[static_cast<std::size_t>(dy) * p.size + dx];
      }
  }
  return img;
}

FlowField MovingScene::flow(double t) const {
  FlowField f(w_, h_);
  for (std::size_t i = 0; i < f.u.size(); ++i) {
    f.u[i] = bg_vx_;
    f.v[i] = bg_vy_;
  }
  for (const auto& p : patches_) {
    const double px = p.x + p.vx * t;
    const double py = p.y + p.vy * t;
    for (int dy = 0; dy < p.size; ++dy)
      for (int dx = 0; dx < p.size; ++dx) {
        const int x = static_cast<int>(std::floor(px)) + dx;
        const int y = static_cast<int>(std::floor(py)) + dy;
        if (x < 0 || x >= w_ || y < 0 || y >= h_) continue;
        const std::size_t i = static_cast<std::size_t>(y) * w_ + x;
        f.u[i] = p.vx;
        f.v[i] = p.vy;
      }
  }
  return f;
}

EventFrame EventCamera::events_between(const Image& before,
                                       const Image& after) const {
  S2A_CHECK(before.width == after.width && before.height == after.height);
  S2A_CHECK(threshold_ > 0.0);
  EventFrame ev(before.width, before.height);
  constexpr double kEps = 0.02;  // sensor dark level
  for (std::size_t i = 0; i < before.pixels.size(); ++i) {
    const double d =
        std::log(after.pixels[i] + kEps) - std::log(before.pixels[i] + kEps);
    // Refractory period: a pixel can emit at most max_events_ per step.
    const double n =
        std::min(max_events_, std::floor(std::abs(d) / threshold_));
    if (n <= 0.0) continue;
    (d > 0 ? ev.pos : ev.neg)[i] = n;
  }
  return ev;
}

std::vector<FlowSample> make_flow_dataset(int count, int width, int height,
                                          Rng& rng, int time_bins) {
  S2A_CHECK(count > 0 && time_bins >= 1);
  std::vector<FlowSample> out;
  out.reserve(static_cast<std::size_t>(count));
  // Lower contrast threshold per bin: sub-interval intensity changes are
  // smaller than full-interval ones.
  EventCamera camera(0.15 / time_bins);
  for (int i = 0; i < count; ++i) {
    // Alternate scene archetypes: pure camera pan, pure object motion, both.
    const int mode = i % 3;
    const double bgv = (mode == 1) ? 0.0 : rng.uniform(-4.0, 4.0);
    const double bgw = (mode == 1) ? 0.0 : rng.uniform(-4.0, 4.0);
    const int patches = (mode == 0) ? 0 : rng.uniform_int(1, 2);
    MovingScene scene(width, height, patches, bgv, bgw, rng);
    const double t0 = rng.uniform(0.0, 4.0);
    FlowSample s;
    s.frame = scene.render(t0);
    s.events = EventFrame(width, height);
    for (int b = 0; b < time_bins; ++b) {
      const double ta = t0 + static_cast<double>(b) / time_bins;
      const double tb = t0 + static_cast<double>(b + 1) / time_bins;
      EventFrame bin = camera.events_between(scene.render(ta), scene.render(tb));
      for (std::size_t p = 0; p < s.events.pos.size(); ++p) {
        s.events.pos[p] += bin.pos[p];
        s.events.neg[p] += bin.neg[p];
      }
      s.bins.push_back(std::move(bin));
    }
    s.flow = scene.flow(t0);
    out.push_back(std::move(s));
  }
  return out;
}

double average_endpoint_error(const FlowField& pred, const FlowField& truth,
                              const EventFrame* mask) {
  S2A_CHECK(pred.width == truth.width && pred.height == truth.height);
  double err = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < pred.u.size(); ++i) {
    if (mask != nullptr && mask->pos[i] + mask->neg[i] <= 0.0) continue;
    const double du = pred.u[i] - truth.u[i];
    const double dv = pred.v[i] - truth.v[i];
    err += std::sqrt(du * du + dv * dv);
    ++n;
  }
  return n > 0 ? err / static_cast<double>(n) : 0.0;
}

}  // namespace s2a::sim
