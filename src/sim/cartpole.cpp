#include "sim/cartpole.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::sim {

void CartPole::reset(Rng& rng) {
  s_.x = rng.uniform(-0.05, 0.05);
  s_.x_dot = rng.uniform(-0.05, 0.05);
  s_.theta = rng.uniform(-0.05, 0.05);
  s_.theta_dot = rng.uniform(-0.05, 0.05);
}

double CartPole::step(double action, Rng& rng) {
  action = std::clamp(action, -1.0, 1.0);
  double force = action * cfg_.force_mag;
  if (cfg_.disturb_prob > 0.0 && rng.bernoulli(cfg_.disturb_prob)) {
    const double f = rng.uniform(cfg_.disturb_min, cfg_.disturb_max);
    force += rng.bernoulli(0.5) ? f : -f;
  }

  // Standard cart-pole dynamics (Barto, Sutton & Anderson 1983).
  const double total_mass = cfg_.cart_mass + cfg_.pole_mass;
  const double pml = cfg_.pole_mass * cfg_.pole_half_length;
  const double cos_t = std::cos(s_.theta);
  const double sin_t = std::sin(s_.theta);
  const double temp =
      (force + pml * s_.theta_dot * s_.theta_dot * sin_t) / total_mass;
  const double theta_acc =
      (cfg_.gravity * sin_t - cos_t * temp) /
      (cfg_.pole_half_length *
       (4.0 / 3.0 - cfg_.pole_mass * cos_t * cos_t / total_mass));
  const double x_acc = temp - pml * theta_acc * cos_t / total_mass;

  s_.x += cfg_.dt * s_.x_dot;
  s_.x_dot += cfg_.dt * x_acc;
  s_.theta += cfg_.dt * s_.theta_dot;
  s_.theta_dot += cfg_.dt * theta_acc;

  return failed() ? 0.0 : 1.0;
}

bool CartPole::failed() const {
  return std::abs(s_.x) > cfg_.x_limit || std::abs(s_.theta) > cfg_.theta_limit;
}

std::vector<double> CartPole::state_vector() const {
  return {s_.x, s_.x_dot, s_.theta, s_.theta_dot};
}

std::vector<double> CartPole::render_retina(int width) const {
  S2A_CHECK(width > 1);
  std::vector<double> img(static_cast<std::size_t>(2 * width), 0.0);

  auto splat = [&](double* strip, double pos, double lo, double hi) {
    const double span = hi - lo;
    const double sigma = span / width * 1.5;
    for (int i = 0; i < width; ++i) {
      const double px = lo + span * (i + 0.5) / width;
      const double d = (px - pos) / sigma;
      strip[i] += std::exp(-0.5 * d * d);
    }
  };

  // Strip 1: cart position over the full track.
  splat(img.data(), s_.x, -cfg_.x_limit, cfg_.x_limit);
  // Strip 2: pole tip offset relative to the cart, magnified (±0.4 m maps
  // to the full strip) so near-upright tilt is visible.
  const double tip_rel = 2.0 * cfg_.pole_half_length * std::sin(s_.theta);
  splat(img.data() + width, tip_rel, -0.4, 0.4);
  return img;
}

}  // namespace s2a::sim
