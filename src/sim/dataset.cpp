#include "sim/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::sim {

ClassificationDataset make_gaussian_classes(int samples, int feature_dim,
                                            int num_classes, double separation,
                                            Rng& rng) {
  S2A_CHECK(samples > 0 && feature_dim > 0 && num_classes > 1);
  ClassificationDataset ds;
  ds.feature_dim = feature_dim;
  ds.num_classes = num_classes;

  // Random unit-ish directions scaled by `separation` as class means.
  std::vector<std::vector<double>> means(static_cast<std::size_t>(num_classes));
  for (auto& m : means) {
    m.resize(static_cast<std::size_t>(feature_dim));
    double norm = 0.0;
    for (auto& x : m) {
      x = rng.normal();
      norm += x * x;
    }
    norm = std::sqrt(norm);
    for (auto& x : m) x = x / norm * separation;
  }

  ds.features.reserve(static_cast<std::size_t>(samples));
  ds.labels.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const int y = i % num_classes;  // balanced classes
    std::vector<double> x(static_cast<std::size_t>(feature_dim));
    for (int d = 0; d < feature_dim; ++d)
      x[static_cast<std::size_t>(d)] =
          means[static_cast<std::size_t>(y)][static_cast<std::size_t>(d)] +
          rng.normal();
    ds.features.push_back(std::move(x));
    ds.labels.push_back(y);
  }
  return ds;
}

double sample_gamma(double shape, Rng& rng) {
  S2A_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost via Gamma(a+1) and the standard power transform.
    const double g = sample_gamma(shape + 1.0, rng);
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    return g * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::vector<std::vector<int>> dirichlet_partition(
    const std::vector<int>& labels, int num_clients, int num_classes,
    double alpha, Rng& rng) {
  S2A_CHECK(num_clients > 0 && num_classes > 0 && alpha > 0.0);
  S2A_CHECK(static_cast<int>(labels.size()) >= num_clients);

  // Indices per class, shuffled.
  std::vector<std::vector<int>> by_class(static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    S2A_CHECK(labels[i] >= 0 && labels[i] < num_classes);
    by_class[static_cast<std::size_t>(labels[i])].push_back(static_cast<int>(i));
  }
  for (auto& v : by_class) rng.shuffle(v);

  std::vector<std::vector<int>> shards(static_cast<std::size_t>(num_clients));
  for (auto& cls : by_class) {
    // Dirichlet draw over clients for this class.
    std::vector<double> w(static_cast<std::size_t>(num_clients));
    double sum = 0.0;
    for (auto& x : w) {
      x = sample_gamma(alpha, rng);
      sum += x;
    }
    std::size_t start = 0;
    for (int c = 0; c < num_clients; ++c) {
      const bool last = (c == num_clients - 1);
      const std::size_t take =
          last ? cls.size() - start
               : static_cast<std::size_t>(
                     w[static_cast<std::size_t>(c)] / sum * cls.size());
      for (std::size_t k = 0; k < take && start < cls.size(); ++k, ++start)
        shards[static_cast<std::size_t>(c)].push_back(cls[start]);
    }
  }

  // Guarantee non-empty shards by stealing from the largest.
  for (auto& shard : shards) {
    if (!shard.empty()) continue;
    auto* biggest = &shards[0];
    for (auto& s : shards)
      if (s.size() > biggest->size()) biggest = &s;
    S2A_CHECK(biggest->size() > 1);
    shard.push_back(biggest->back());
    biggest->pop_back();
  }
  return shards;
}

}  // namespace s2a::sim
